//! Deterministic parallel runner for device-attached workloads.
//!
//! The crate avoids a thread-pool dependency: work is fanned out over
//! `std::thread::scope` workers. The worker count honours the
//! `RAYON_NUM_THREADS` environment variable (the conventional knob for
//! data-parallel Rust code) and can be overridden per-scope in tests with
//! [`with_threads`].
//!
//! # Deterministic parallel virtual time
//!
//! Wall-clock speed comes from however many OS threads happen to run, but
//! the *virtual* clock must not depend on that number — a sweep run on a
//! laptop and on a 64-core server has to report the same simulated time.
//! The model therefore separates execution from accounting:
//!
//! 1. every work item runs inside [`with_deferred_charges`], so its device
//!    time is captured in a per-item sink instead of the global clock
//!    (accesses use a schedule-independent streaming cost model — see
//!    [`with_deferred_charges`]);
//! 2. at the barrier, the per-item costs are assigned in item order to a
//!    fixed number of *virtual lanes* ([`virtual_lanes`], default 8,
//!    `NTADOC_VIRTUAL_LANES` to override) — each item goes to the
//!    currently least-loaded lane — and the clock advances by the
//!    resulting makespan ([`lanes_makespan`]).
//!
//! Per-item costs are deterministic, the lane assignment is deterministic,
//! so the join is identical for any `RAYON_NUM_THREADS`. The reported time
//! models the workload running on `virtual_lanes()` parallel memory
//! channels rather than serializing it.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::device::{with_deferred_charges, DeferredCharges, SimDevice};

/// Virtual lanes used by the makespan join when `NTADOC_VIRTUAL_LANES` is
/// not set. Models the parallelism of the simulated hardware, decoupled
/// from how many OS threads execute the work.
pub const DEFAULT_VIRTUAL_LANES: usize = 8;

thread_local! {
    /// Per-thread worker-count override (0 = none); see [`with_threads`].
    static THREADS_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Run `f` with the worker count pinned to `n` on this thread, regardless
/// of `RAYON_NUM_THREADS`. Used by determinism tests, which cannot mutate
/// process-global environment variables safely.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREADS_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREADS_OVERRIDE.with(|c| c.replace(n.max(1)));
    let _restore = Restore(prev);
    f()
}

/// Worker threads to use: the [`with_threads`] override if active, else
/// `RAYON_NUM_THREADS`, else the machine's available parallelism.
pub fn thread_count() -> usize {
    let over = THREADS_OVERRIDE.with(|c| c.get());
    if over > 0 {
        return over;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Virtual lanes for the makespan join (`NTADOC_VIRTUAL_LANES`, default
/// [`DEFAULT_VIRTUAL_LANES`]).
pub fn virtual_lanes() -> usize {
    std::env::var("NTADOC_VIRTUAL_LANES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_VIRTUAL_LANES)
}

/// Map `f` over `items` on [`thread_count`] workers, returning results in
/// item order. Items are claimed from a shared atomic counter, so the
/// *schedule* is nondeterministic — only use this for work whose
/// side-effects commute (or none). A panicking item propagates its panic
/// to the caller.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = thread_count().min(items.len()).max(1);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => collected.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// [`par_map`] with each item executed under [`with_deferred_charges`]:
/// returns the results plus each item's captured accounting sink (its
/// virtual-time cost and per-shard read counters). The single-worker path
/// uses the same deferred accounting, so costs are identical for any
/// worker count. Callers merge the sinks back into the device at the
/// barrier with [`join_deferred`].
pub fn par_map_timed<T, R, F>(items: &[T], f: F) -> (Vec<R>, Vec<DeferredCharges>)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let sinks: Vec<DeferredCharges> = items.iter().map(|_| DeferredCharges::new()).collect();
    let results = par_map(items, |i, t| with_deferred_charges(&sinks[i], || f(i, t)));
    (results, sinks)
}

/// Barrier join for a [`par_map_timed`] batch: merge the per-item read
/// counters into the device's per-shard totals
/// ([`SimDevice::absorb_deferred`]) and advance the virtual clock by the
/// deterministic lane-folded makespan of the per-item costs. This is the
/// single point where a parallel batch touches the device's shared state,
/// so a stats snapshot taken afterwards (e.g. at span close) attributes
/// every read and nanosecond to the batch that issued it.
pub fn join_deferred(dev: &SimDevice, charges: &[DeferredCharges]) {
    dev.absorb_deferred(charges);
    dev.charge_ns(deferred_makespan(charges));
}

/// The virtual time a [`par_map_timed`] batch will charge at its barrier:
/// the [`lanes_makespan`] of the per-item costs over [`virtual_lanes`].
/// Exposed so pipelines can report per-stage parallel cost (e.g. a build
/// bench's modeled speedup) without double-charging the device.
pub fn deferred_makespan(charges: &[DeferredCharges]) -> u64 {
    let item_ns: Vec<u64> = charges.iter().map(|c| c.ns()).collect();
    lanes_makespan(&item_ns, virtual_lanes())
}

/// Deterministic makespan of `item_ns` over `lanes` virtual lanes: items
/// are assigned in index order, each to the currently least-loaded lane
/// (ties broken by lane index); the makespan is the heaviest lane's total.
pub fn lanes_makespan(item_ns: &[u64], lanes: usize) -> u64 {
    let lanes = lanes.max(1);
    let mut load = vec![0u64; lanes];
    for &c in item_ns {
        let lightest = (0..lanes).min_by_key(|&i| (load[i], i)).expect("lanes >= 1");
        load[lightest] += c;
    }
    load.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimDevice;
    use crate::profile::DeviceProfile;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 8] {
            let out = with_threads(threads, || par_map(&items, |_, &x| x * 2));
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_timed_costs_independent_of_workers() {
        let dev = SimDevice::new(DeviceProfile::nvm_optane(), 1 << 20);
        let items: Vec<u64> = (0..64).collect();
        let run = |threads: usize| {
            with_threads(threads, || {
                let (_, charges) = par_map_timed(&items, |_, &i| {
                    let mut buf = vec![0u8; 1024];
                    dev.read_bytes(i * 4096, &mut buf);
                    dev.charge_ns(10 * (i + 1));
                });
                charges.iter().map(|c| c.ns()).collect::<Vec<_>>()
            })
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
        assert!(one.iter().all(|&ns| ns > 0));
    }

    #[test]
    fn deferred_items_do_not_advance_global_clock() {
        let dev = SimDevice::new(DeviceProfile::nvm_optane(), 1 << 20);
        let items: Vec<u64> = (0..8).collect();
        let (_, charges) = par_map_timed(&items, |_, &i| dev.write_u64(i * 256, i));
        assert_eq!(dev.stats().virtual_ns, 0, "cost must be deferred to sinks");
        let ns: Vec<u64> = charges.iter().map(|c| c.ns()).collect();
        let makespan = lanes_makespan(&ns, 4);
        dev.charge_ns(makespan);
        assert_eq!(dev.stats().virtual_ns, makespan);
    }

    #[test]
    fn join_deferred_merges_reads_and_advances_clock() {
        let dev = SimDevice::new(DeviceProfile::nvm_optane(), 1 << 20);
        let items: Vec<u64> = (0..16).collect();
        let (_, charges) = par_map_timed(&items, |_, &i| {
            let mut buf = vec![0u8; 512];
            dev.read_bytes(i * 4096, &mut buf);
        });
        assert_eq!(dev.stats().reads, 0, "reads must stay in the sinks until the barrier");
        join_deferred(&dev, &charges);
        let stats = dev.stats();
        assert_eq!(stats.reads, 16);
        assert_eq!(stats.bytes_read, 16 * 512);
        assert!(stats.virtual_ns > 0);
        let shard_total: u64 = dev.read_shard_stats().iter().map(|s| s.reads).sum();
        assert_eq!(shard_total, 16);
    }

    #[test]
    fn makespan_matches_hand_schedule() {
        // Greedy in-order assignment on 2 lanes: 5→lane0, 4→lane1,
        // 3→lane1 (load 4<5? no: lane1 has 4 < lane0's 5) → lane1=7,
        // 2→lane0=7, 1→lane0 (tie at 7,7 → lane0) = 8.
        assert_eq!(lanes_makespan(&[5, 4, 3, 2, 1], 2), 8);
        assert_eq!(lanes_makespan(&[5, 4, 3, 2, 1], 1), 15);
        assert_eq!(lanes_makespan(&[], 4), 0);
        assert_eq!(lanes_makespan(&[7], 4), 7);
    }

    #[test]
    fn panics_propagate_from_workers() {
        let items: Vec<u32> = (0..32).collect();
        let res = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map(&items, |_, &x| {
                    if x == 17 {
                        panic!("boom");
                    }
                    x
                })
            })
        });
        assert!(res.is_err());
    }
}
