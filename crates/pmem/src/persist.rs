//! The two persistence strategies of §IV-E.
//!
//! * **Operation-level** ([`TxLog`]) mirrors PMDK `libpmemobj`-style undo
//!   logging: before a range is modified inside a transaction its pre-image
//!   is copied into a persistent log and persisted; commit persists the
//!   modified data and retires the log. Crash during a transaction →
//!   [`TxLog::recover`] rolls the data back from the log. The extra log
//!   traffic is real device traffic, so write amplification shows up in the
//!   virtual clock exactly as the paper reports (Figure 5(b) vs 5(a)).
//! * **Phase-level** ([`PhasePersist`]) mirrors `libpmem`: data is written
//!   with plain stores and flushed wholesale at the end of each N-TADOC
//!   phase. Cheap during normal execution; on a crash the current phase's
//!   output is discarded and the phase re-runs from the previous
//!   checkpoint.

use std::collections::HashSet;
use std::rc::Rc;

use crate::device::{Addr, SimDevice};
use crate::error::PmemError;
use crate::Result;

/// Byte layout of the undo log region:
/// ```text
/// [0]   u64 active      (1 while a transaction is open)
/// [8]   u64 entry_count
/// [16.. ] entries: { u64 addr, u64 len, len bytes of pre-image } ...
/// ```
const LOG_HEADER: u64 = 16;

/// Undo-log transactions for operation-level persistence.
pub struct TxLog {
    dev: Rc<SimDevice>,
    log_base: Addr,
    log_capacity: usize,
    /// Write offset within the log region (valid while active).
    cursor: u64,
    entries: u64,
    active: bool,
    /// Ranges modified in the open transaction, persisted on commit.
    dirty_ranges: Vec<(Addr, usize)>,
    /// Ranges already logged in the open transaction (PMDK's
    /// `tx_add_range` is idempotent per transaction — re-logging the same
    /// range is skipped).
    logged: HashSet<(Addr, usize)>,
}

impl TxLog {
    /// Create a transaction log over `[log_base, log_base+log_capacity)`.
    /// The region must not overlap application data.
    pub fn new(dev: Rc<SimDevice>, log_base: Addr, log_capacity: usize) -> Self {
        assert!(log_capacity as u64 >= LOG_HEADER + 16, "log region too small");
        TxLog {
            dev,
            log_base,
            log_capacity,
            cursor: LOG_HEADER,
            entries: 0,
            active: false,
            dirty_ranges: Vec::new(),
            logged: HashSet::new(),
        }
    }

    /// Whether a transaction is currently open.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Open a transaction.
    pub fn begin(&mut self) -> Result<()> {
        if self.active {
            return Err(PmemError::TransactionAlreadyActive);
        }
        self.cursor = LOG_HEADER;
        self.entries = 0;
        self.dirty_ranges.clear();
        self.logged.clear();
        self.dev.write_u64(self.log_base + 8, 0);
        self.dev.write_u64(self.log_base, 1);
        self.dev.persist(self.log_base, 16);
        self.active = true;
        Ok(())
    }

    /// Log the pre-image of `[addr, addr+len)` before the caller modifies
    /// it. Idempotence is the caller's concern; logging a range twice is
    /// safe (recovery applies entries in reverse) but wastes log space.
    pub fn log_range(&mut self, addr: Addr, len: usize) -> Result<()> {
        if !self.active {
            return Err(PmemError::NoActiveTransaction);
        }
        if !self.logged.insert((addr, len)) {
            return Ok(()); // already undo-logged in this transaction
        }
        let needed = 16 + len;
        if self.cursor as usize + needed > self.log_capacity {
            return Err(PmemError::LogExhausted {
                needed: self.cursor as usize + needed,
                capacity: self.log_capacity,
            });
        }
        // Copy the pre-image through the device so the traffic is charged.
        let mut pre = vec![0u8; len];
        self.dev.read_bytes(addr, &mut pre);
        let entry_at = self.log_base + self.cursor;
        self.dev.write_u64(entry_at, addr);
        self.dev.write_u64(entry_at + 8, len as u64);
        self.dev.write_bytes(entry_at + 16, &pre);
        // The entry must be durable before the data may change.
        self.dev.persist(entry_at, needed);
        self.dev.note_log_bytes(needed as u64);
        self.cursor += needed as u64;
        self.entries += 1;
        self.dev.write_u64(self.log_base + 8, self.entries);
        self.dev.persist(self.log_base + 8, 8);
        self.dirty_ranges.push((addr, len));
        Ok(())
    }

    /// Commit: persist every modified range, then retire the log.
    pub fn commit(&mut self) -> Result<()> {
        if !self.active {
            return Err(PmemError::NoActiveTransaction);
        }
        for &(addr, len) in &self.dirty_ranges {
            self.dev.flush(addr, len);
        }
        self.dev.fence();
        self.dev.write_u64(self.log_base, 0);
        self.dev.persist(self.log_base, 8);
        self.active = false;
        Ok(())
    }

    /// Abort: roll the logged ranges back to their pre-images, then retire
    /// the log.
    pub fn abort(&mut self) -> Result<()> {
        if !self.active {
            return Err(PmemError::NoActiveTransaction);
        }
        self.apply_undo()?;
        self.dev.write_u64(self.log_base, 0);
        self.dev.persist(self.log_base, 8);
        self.active = false;
        Ok(())
    }

    /// Post-crash recovery: if the log was active at the crash, undo the
    /// partially-applied transaction. Returns `true` if a rollback ran.
    pub fn recover(&mut self) -> Result<bool> {
        self.active = false;
        self.dirty_ranges.clear();
        if self.dev.read_u64(self.log_base) != 1 {
            return Ok(false);
        }
        self.entries = self.dev.read_u64(self.log_base + 8);
        // Re-derive the cursor by walking the entries.
        let mut cursor = LOG_HEADER;
        for _ in 0..self.entries {
            let len = self.dev.read_u64(self.log_base + cursor + 8);
            cursor += 16 + len;
            if cursor as usize > self.log_capacity {
                return Err(PmemError::CorruptImage(
                    "undo log entry extends past the log region".into(),
                ));
            }
        }
        self.cursor = cursor;
        self.apply_undo()?;
        self.dev.write_u64(self.log_base, 0);
        self.dev.persist(self.log_base, 8);
        Ok(true)
    }

    /// Walk entries newest-first, restoring pre-images.
    fn apply_undo(&mut self) -> Result<()> {
        // Collect entry offsets first (forward walk), then apply reversed.
        let mut offsets = Vec::with_capacity(self.entries as usize);
        let mut cursor = LOG_HEADER;
        for _ in 0..self.entries {
            let len = self.dev.read_u64(self.log_base + cursor + 8) as usize;
            offsets.push((cursor, len));
            cursor += 16 + len as u64;
        }
        for &(off, len) in offsets.iter().rev() {
            let addr = self.dev.read_u64(self.log_base + off);
            let mut pre = vec![0u8; len];
            self.dev.read_bytes(self.log_base + off + 16, &mut pre);
            self.dev.write_bytes(addr, &pre);
            self.dev.persist(addr, len);
        }
        Ok(())
    }
}

/// Phase-level persistence: plain stores during a phase, wholesale flush at
/// the phase boundary.
pub struct PhasePersist {
    dev: Rc<SimDevice>,
    /// Regions registered for end-of-phase flushing.
    regions: Vec<(Addr, usize)>,
}

impl PhasePersist {
    /// New phase-level persister for `dev`.
    pub fn new(dev: Rc<SimDevice>) -> Self {
        PhasePersist { dev, regions: Vec::new() }
    }

    /// Register a region written during the current phase.
    pub fn track(&mut self, addr: Addr, len: usize) {
        if len > 0 {
            self.regions.push((addr, len));
        }
    }

    /// End the phase: flush every tracked region and fence once.
    pub fn phase_end(&mut self) {
        for &(addr, len) in &self.regions {
            self.dev.flush(addr, len);
        }
        self.dev.fence();
        self.regions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;

    fn dev() -> Rc<SimDevice> {
        Rc::new(SimDevice::new(DeviceProfile::nvm_optane(), 1 << 20))
    }

    const LOG_AT: Addr = 1 << 19;

    #[test]
    fn committed_tx_survives_crash() {
        let d = dev();
        let mut tx = TxLog::new(d.clone(), LOG_AT, 4096);
        tx.begin().unwrap();
        tx.log_range(0, 8).unwrap();
        d.write_u64(0, 42);
        d.flush(0, 8); // data flush inside tx is allowed
        tx.commit().unwrap();
        d.crash();
        let mut tx2 = TxLog::new(d.clone(), LOG_AT, 4096);
        assert!(!tx2.recover().unwrap());
        assert_eq!(d.read_u64(0), 42);
    }

    #[test]
    fn uncommitted_tx_rolls_back_on_recovery() {
        let d = dev();
        d.write_u64(0, 7);
        d.persist(0, 8);
        let mut tx = TxLog::new(d.clone(), LOG_AT, 4096);
        tx.begin().unwrap();
        tx.log_range(0, 8).unwrap();
        d.write_u64(0, 99);
        d.persist(0, 8); // even persisted data must roll back
        d.crash();
        let mut tx2 = TxLog::new(d.clone(), LOG_AT, 4096);
        assert!(tx2.recover().unwrap());
        assert_eq!(d.read_u64(0), 7);
    }

    #[test]
    fn abort_restores_pre_images_in_reverse() {
        let d = dev();
        d.write_u64(0, 1);
        d.persist(0, 8);
        let mut tx = TxLog::new(d.clone(), LOG_AT, 4096);
        tx.begin().unwrap();
        tx.log_range(0, 8).unwrap();
        d.write_u64(0, 2);
        tx.log_range(0, 8).unwrap(); // second pre-image is 2
        d.write_u64(0, 3);
        tx.abort().unwrap();
        assert_eq!(d.read_u64(0), 1, "reverse application must restore the oldest image");
    }

    #[test]
    fn nested_begin_rejected() {
        let d = dev();
        let mut tx = TxLog::new(d, LOG_AT, 4096);
        tx.begin().unwrap();
        assert!(matches!(tx.begin(), Err(PmemError::TransactionAlreadyActive)));
    }

    #[test]
    fn log_outside_tx_rejected() {
        let d = dev();
        let mut tx = TxLog::new(d, LOG_AT, 4096);
        assert!(matches!(tx.log_range(0, 8), Err(PmemError::NoActiveTransaction)));
    }

    #[test]
    fn log_exhaustion_detected() {
        let d = dev();
        let mut tx = TxLog::new(d, LOG_AT, 64);
        tx.begin().unwrap();
        assert!(matches!(tx.log_range(0, 256), Err(PmemError::LogExhausted { .. })));
    }

    #[test]
    fn tx_logging_amplifies_writes() {
        // Writing N bytes under operation-level persistence must move more
        // device bytes than plain phase-level writes — that is the paper's
        // Figure 5(a)/(b) gap.
        let d_tx = dev();
        let mut tx = TxLog::new(d_tx.clone(), LOG_AT, 1 << 16);
        for i in 0..100u64 {
            tx.begin().unwrap();
            tx.log_range(i * 8, 8).unwrap();
            d_tx.write_u64(i * 8, i);
            tx.commit().unwrap();
        }
        let tx_ns = d_tx.stats().virtual_ns;

        let d_ph = dev();
        let mut ph = PhasePersist::new(d_ph.clone());
        for i in 0..100u64 {
            d_ph.write_u64(i * 8, i);
        }
        ph.track(0, 800);
        ph.phase_end();
        let ph_ns = d_ph.stats().virtual_ns;
        assert!(tx_ns > ph_ns * 2, "tx {tx_ns} should cost >2x phase {ph_ns}");
    }

    #[test]
    fn phase_persist_makes_data_durable() {
        let d = dev();
        let mut ph = PhasePersist::new(d.clone());
        d.write_u64(128, 5);
        ph.track(128, 8);
        ph.phase_end();
        d.crash();
        assert_eq!(d.read_u64(128), 5);
    }

    #[test]
    fn phase_crash_before_phase_end_loses_phase_data() {
        let d = dev();
        let mut ph = PhasePersist::new(d.clone());
        d.write_u64(128, 5);
        ph.track(128, 8);
        // no phase_end
        d.crash();
        assert_eq!(d.read_u64(128), 0);
    }

    #[test]
    fn relogging_a_range_in_one_tx_is_free() {
        // PMDK's tx_add_range is idempotent per transaction: the second
        // log of the same range must not consume log space or device time
        // beyond the dedup check itself.
        let d = dev();
        let mut tx = TxLog::new(d.clone(), LOG_AT, 4096);
        tx.begin().unwrap();
        tx.log_range(0, 8).unwrap();
        let after_first = d.stats().log_bytes;
        tx.log_range(0, 8).unwrap();
        assert_eq!(d.stats().log_bytes, after_first);
        tx.commit().unwrap();
        // A new transaction logs the range again.
        tx.begin().unwrap();
        tx.log_range(0, 8).unwrap();
        assert!(d.stats().log_bytes > after_first);
        tx.commit().unwrap();
    }

    #[test]
    fn dedup_still_restores_the_tx_start_image() {
        let d = dev();
        d.write_u64(0, 1);
        d.persist(0, 8);
        let mut tx = TxLog::new(d.clone(), LOG_AT, 4096);
        tx.begin().unwrap();
        tx.log_range(0, 8).unwrap();
        d.write_u64(0, 2);
        tx.log_range(0, 8).unwrap(); // deduped — pre-image stays 1
        d.write_u64(0, 3);
        tx.abort().unwrap();
        assert_eq!(d.read_u64(0), 1);
    }

    #[test]
    fn recover_on_clean_log_is_noop() {
        let d = dev();
        let mut tx = TxLog::new(d, LOG_AT, 4096);
        assert!(!tx.recover().unwrap());
    }
}
