//! The two persistence strategies of §IV-E.
//!
//! * **Operation-level** ([`TxLog`]) mirrors PMDK `libpmemobj`-style undo
//!   logging: before a range is modified inside a transaction its pre-image
//!   is copied into a persistent log and persisted; commit persists the
//!   modified data and retires the log. Crash during a transaction →
//!   [`TxLog::recover`] rolls the data back from the log. The extra log
//!   traffic is real device traffic, so write amplification shows up in the
//!   virtual clock exactly as the paper reports (Figure 5(b) vs 5(a)).
//! * **Phase-level** ([`PhasePersist`]) mirrors `libpmem`: data is written
//!   with plain stores and flushed wholesale at the end of each N-TADOC
//!   phase. Cheap during normal execution; on a crash the current phase's
//!   output is discarded and the phase re-runs from the previous
//!   checkpoint.
//!
//! # Corruption safety
//!
//! Under the torn-write crash model ([`crate::CrashMode::Torn`]) a log
//! entry that was being persisted when power failed may reach media
//! partially, at 8-byte granularity. The log therefore seals every entry
//! with a CRC bound to the owning transaction's id; recovery walks the
//! entries in order and **truncates at the first unsealed or corrupt
//! entry**. That truncation is safe by construction: an entry is made
//! durable (written, flushed, fenced) *before* the caller is allowed to
//! modify the data it covers, so a torn entry implies its data range is
//! still untouched and needs no undo. Recovery never trusts on-media
//! lengths or addresses blindly — a sealed entry whose target range falls
//! outside the device is reported as [`PmemError::CorruptImage`], never
//! applied, and arbitrary garbage in the log region can at worst roll
//! back zero entries.

use std::collections::HashSet;
use std::sync::Arc;

use crate::backend::PmemBackend;
use crate::device::Addr;
use crate::error::PmemError;
use crate::Result;

/// Byte layout of the undo log region:
/// ```text
/// [0]   u64 active tx id (0 = idle, N > 0 = transaction N open)
/// [8]   u64 last allocated tx id (bumped durably before activation)
/// [16..] entries: { u64 addr, u64 len, len bytes of pre-image, u64 seal }
/// ```
/// The seal is `SEAL_MAGIC ^ crc64(tx_id ‖ addr ‖ len ‖ pre-image)`.
/// Binding the seal to the tx id means entries left over from an earlier
/// retired transaction can never validate against the current one. The
/// activation word at `[0]` is a single 8-byte store, which the crash
/// model (like real NVM) treats as atomic.
const LOG_HEADER: u64 = 16;

/// Fixed bytes per entry beyond the pre-image: addr + len + seal.
const ENTRY_OVERHEAD: usize = 24;

/// XOR-ed over the entry CRC so an all-zero (or untouched) seal word never
/// validates even for an entry whose CRC happens to be zero.
const SEAL_MAGIC: u64 = 0x5EA1_ED10_0DE1_7A6Fu64;

/// CRC-64 (ECMA-182, reflected). Self-contained so the substrate stays
/// dependency-free; the log's payloads are small enough that the bitwise
/// form is not worth a table.
pub fn crc64(bytes: &[u8]) -> u64 {
    !crc64_update(!0, bytes)
}

fn crc64_update(mut crc: u64, bytes: &[u8]) -> u64 {
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    for &b in bytes {
        crc ^= b as u64;
        for _ in 0..8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ POLY } else { crc >> 1 };
        }
    }
    crc
}

/// CRC binding an entry to its transaction.
fn entry_crc(tx_id: u64, addr: u64, len: u64, pre: &[u8]) -> u64 {
    let mut head = [0u8; 24];
    head[..8].copy_from_slice(&tx_id.to_le_bytes());
    head[8..16].copy_from_slice(&addr.to_le_bytes());
    head[16..24].copy_from_slice(&len.to_le_bytes());
    !crc64_update(crc64_update(!0, &head), pre)
}

/// Undo-log transactions for operation-level persistence.
///
/// Generic over the storage backend: the same protocol runs against the
/// in-memory simulator and the file-backed device (see [`PmemBackend`]).
pub struct TxLog {
    dev: Arc<dyn PmemBackend>,
    log_base: Addr,
    log_capacity: usize,
    /// Write offset within the log region (valid while active).
    cursor: u64,
    /// Id of the open transaction (valid while active).
    tx_id: u64,
    active: bool,
    /// `(entry offset, target addr, target len)` for each entry of the
    /// open transaction, in log order.
    entry_index: Vec<(u64, Addr, usize)>,
    /// Ranges modified in the open transaction, persisted on commit.
    dirty_ranges: Vec<(Addr, usize)>,
    /// Ranges already logged in the open transaction (PMDK's
    /// `tx_add_range` is idempotent per transaction — re-logging the same
    /// range is skipped).
    logged: HashSet<(Addr, usize)>,
}

impl TxLog {
    /// Create a transaction log over `[log_base, log_base+log_capacity)`.
    /// The region must not overlap application data.
    pub fn new(dev: Arc<dyn PmemBackend>, log_base: Addr, log_capacity: usize) -> Self {
        assert!(log_capacity >= LOG_HEADER as usize + ENTRY_OVERHEAD, "log region too small");
        TxLog {
            dev,
            log_base,
            log_capacity,
            cursor: LOG_HEADER,
            tx_id: 0,
            active: false,
            entry_index: Vec::new(),
            dirty_ranges: Vec::new(),
            logged: HashSet::new(),
        }
    }

    /// Whether a transaction is currently open.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Open a transaction.
    pub fn begin(&mut self) -> Result<()> {
        if self.active {
            return Err(PmemError::TransactionAlreadyActive);
        }
        self.cursor = LOG_HEADER;
        self.entry_index.clear();
        self.dirty_ranges.clear();
        self.logged.clear();
        // Allocate the id durably *before* activating. A crash between the
        // two persists leaves the log idle (word [0] still zero), so the
        // id bump is harmlessly wasted; a crash after leaves word [0] and
        // word [8] consistent. Activation itself is one 8-byte store,
        // which the crash model treats as atomic.
        let new_id = self.dev.read_u64(self.log_base + 8).wrapping_add(1).max(1);
        self.dev.write_u64(self.log_base + 8, new_id);
        self.dev.persist(self.log_base + 8, 8);
        self.dev.write_u64(self.log_base, new_id);
        self.dev.persist(self.log_base, 8);
        self.tx_id = new_id;
        self.active = true;
        Ok(())
    }

    /// Log the pre-image of `[addr, addr+len)` before the caller modifies
    /// it. Idempotence is the caller's concern; logging a range twice is
    /// safe (recovery applies entries in reverse) but wastes log space.
    pub fn log_range(&mut self, addr: Addr, len: usize) -> Result<()> {
        if !self.active {
            return Err(PmemError::NoActiveTransaction);
        }
        if !self.logged.insert((addr, len)) {
            return Ok(()); // already undo-logged in this transaction
        }
        let needed = ENTRY_OVERHEAD + len;
        if self.cursor as usize + needed > self.log_capacity {
            return Err(PmemError::LogExhausted {
                needed: self.cursor as usize + needed,
                capacity: self.log_capacity,
            });
        }
        // Copy the pre-image through the device so the traffic is charged.
        let mut pre = vec![0u8; len];
        self.dev.try_read_bytes(addr, &mut pre)?;
        let entry_at = self.log_base + self.cursor;
        self.dev.try_write_u64(entry_at, addr)?;
        self.dev.try_write_u64(entry_at + 8, len as u64)?;
        self.dev.try_write_bytes(entry_at + 16, &pre)?;
        let seal = SEAL_MAGIC ^ entry_crc(self.tx_id, addr, len as u64, &pre);
        self.dev.try_write_u64(entry_at + 16 + len as u64, seal)?;
        // One persist makes the whole sealed entry durable before the data
        // may change; if this tears, the seal fails to validate and
        // recovery truncates here — safe, because the data is untouched.
        // It is a *seal* persist: the caller's data write may reach the
        // backing file (via any later fence) and survive a host crash, so
        // the undo entry — and, transitively, the activation marker
        // written before it — must be on stable storage first, or
        // recovery could find surviving data with no entry to undo it.
        self.dev.persist_seal(entry_at, needed);
        self.dev.note_log_bytes(needed as u64);
        self.entry_index.push((self.cursor, addr, len));
        self.cursor += needed as u64;
        self.dirty_ranges.push((addr, len));
        Ok(())
    }

    /// Commit: persist every modified range, then retire the log.
    ///
    /// The log-retire write is the commit record — the caller treats the
    /// operation as durable the moment this returns — so it goes out
    /// through a *seal* fence: backends staging durable writes in a
    /// volatile tier (the page cache) must sync before acknowledging,
    /// regardless of their per-fence policy. The seal barrier also
    /// hardens the data fence just before it.
    pub fn commit(&mut self) -> Result<()> {
        if !self.active {
            return Err(PmemError::NoActiveTransaction);
        }
        for &(addr, len) in &self.dirty_ranges {
            self.dev.flush(addr, len);
        }
        self.dev.fence();
        self.dev.write_u64(self.log_base, 0);
        self.dev.persist_seal(self.log_base, 8);
        self.active = false;
        Ok(())
    }

    /// Abort: roll the logged ranges back to their pre-images, then retire
    /// the log.
    pub fn abort(&mut self) -> Result<()> {
        if !self.active {
            return Err(PmemError::NoActiveTransaction);
        }
        let entries = std::mem::take(&mut self.entry_index);
        self.apply_undo(&entries)?;
        self.dev.write_u64(self.log_base, 0);
        // Like commit, the retire record is acknowledged state: seal it.
        self.dev.persist_seal(self.log_base, 8);
        self.active = false;
        Ok(())
    }

    /// Post-crash recovery: if the log was active at the crash, undo the
    /// partially-applied transaction. Returns `true` if a rollback ran.
    ///
    /// Walks the entries in log order, validating each seal against the
    /// recorded tx id, and truncates at the first unsealed or corrupt
    /// entry (see the module docs for why that is safe). A *sealed* entry
    /// whose target range falls outside the device means the protocol
    /// itself was violated and is reported as
    /// [`PmemError::CorruptImage`]; arbitrary garbage in the log region is
    /// handled without panicking.
    pub fn recover(&mut self) -> Result<bool> {
        self.active = false;
        self.entry_index.clear();
        self.dirty_ranges.clear();
        self.logged.clear();
        let state = self.dev.try_read_u64(self.log_base)?;
        if state == 0 {
            return Ok(false);
        }
        let tx_id = state;
        let valid = self.scan_valid_entries(tx_id)?;
        self.cursor =
            valid.last().map_or(LOG_HEADER, |&(off, _, len)| off + (ENTRY_OVERHEAD + len) as u64);
        self.apply_undo(&valid)?;
        self.dev.try_write_u64(self.log_base, 0)?;
        // Recovery's rollback must itself survive a host crash, or a
        // second restart would replay stale undo over post-recovery
        // writes: seal the retire record.
        self.dev.persist_seal(self.log_base, 8);
        Ok(true)
    }

    /// Read-only examination of the log region as left on media: what
    /// [`recover`](Self::recover) *would* do, without applying anything.
    /// This is what `fsck` reports. Returns [`PmemError::CorruptImage`]
    /// when a sealed entry targets an impossible range — the one state
    /// recovery cannot repair.
    pub fn inspect(&self) -> Result<TxLogInspection> {
        let active_tx = self.dev.try_read_u64(self.log_base)?;
        let last_tx_id = self.dev.try_read_u64(self.log_base + 8)?;
        let (valid_entries, undo_bytes) = if active_tx == 0 {
            (0, 0)
        } else {
            let valid = self.scan_valid_entries(active_tx)?;
            let bytes = valid.iter().map(|&(_, _, len)| len as u64).sum();
            (valid.len(), bytes)
        };
        Ok(TxLogInspection { active_tx, last_tx_id, valid_entries, undo_bytes })
    }

    /// Forward-walk the log, returning `(offset, addr, len)` for every
    /// entry whose seal validates against `tx_id`, stopping at the first
    /// that does not.
    fn scan_valid_entries(&self, tx_id: u64) -> Result<Vec<(u64, Addr, usize)>> {
        let log_capacity = self.log_capacity as u64;
        let device_capacity = self.dev.capacity();
        let mut valid = Vec::new();
        let mut cursor = LOG_HEADER;
        loop {
            if cursor + ENTRY_OVERHEAD as u64 > log_capacity {
                break; // no room for even an empty entry
            }
            let addr = self.dev.try_read_u64(self.log_base + cursor)?;
            let len = self.dev.try_read_u64(self.log_base + cursor + 8)?;
            // The recorded length is untrusted: reject before allocating
            // or reading anything based on it.
            let end_in_log =
                cursor.checked_add(ENTRY_OVERHEAD as u64).and_then(|e| e.checked_add(len));
            let end_in_log = match end_in_log {
                Some(e) if e <= log_capacity => e,
                _ => break, // truncate: length field is garbage
            };
            let mut pre = vec![0u8; len as usize];
            self.dev.try_read_bytes(self.log_base + cursor + 16, &mut pre)?;
            let seal = self.dev.try_read_u64(self.log_base + cursor + 16 + len)?;
            if seal != SEAL_MAGIC ^ entry_crc(tx_id, addr, len, &pre) {
                break; // truncate: torn, stale, or corrupt entry
            }
            // A sealed entry targeting an impossible range is corruption,
            // not mere truncation.
            match addr.checked_add(len) {
                Some(end) if end <= device_capacity => {}
                _ => {
                    return Err(PmemError::CorruptImage(format!(
                        "sealed undo entry targets [{addr:#x}, +{len}) outside device"
                    )))
                }
            }
            valid.push((cursor, addr, len as usize));
            cursor = end_in_log;
        }
        Ok(valid)
    }

    /// Apply `entries` newest-first, restoring pre-images. Every target
    /// range has been bounds-validated by the caller.
    fn apply_undo(&mut self, entries: &[(u64, Addr, usize)]) -> Result<()> {
        for &(off, addr, len) in entries.iter().rev() {
            let mut pre = vec![0u8; len];
            self.dev.try_read_bytes(self.log_base + off + 16, &mut pre)?;
            self.dev.try_write_bytes(addr, &pre)?;
            self.dev.persist(addr, len);
        }
        Ok(())
    }
}

/// What a read-only walk of the undo-log region found; see
/// [`TxLog::inspect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxLogInspection {
    /// Id of the transaction open at the crash (0 = log is clean).
    pub active_tx: u64,
    /// Last durably allocated transaction id.
    pub last_tx_id: u64,
    /// Sealed entries that validate and would roll back on recovery.
    pub valid_entries: usize,
    /// Total pre-image bytes those entries would restore.
    pub undo_bytes: u64,
}

impl TxLogInspection {
    /// Whether recovery has work to do (an interrupted transaction).
    pub fn needs_rollback(&self) -> bool {
        self.active_tx != 0
    }
}

/// Phase-level persistence: plain stores during a phase, wholesale flush at
/// the phase boundary.
pub struct PhasePersist {
    dev: Arc<dyn PmemBackend>,
    /// Regions registered for end-of-phase flushing.
    regions: Vec<(Addr, usize)>,
}

impl PhasePersist {
    /// New phase-level persister for `dev`.
    pub fn new(dev: Arc<dyn PmemBackend>) -> Self {
        PhasePersist { dev, regions: Vec::new() }
    }

    /// Register a region written during the current phase.
    pub fn track(&mut self, addr: Addr, len: usize) {
        if len > 0 {
            self.regions.push((addr, len));
        }
    }

    /// Number of regions tracked so far in the current phase.
    pub fn tracked(&self) -> usize {
        self.regions.len()
    }

    /// End the phase: coalesce the tracked regions (duplicates, overlaps
    /// and adjacent ranges merge into one), flush each merged region, and
    /// fence once. Engines tracking a region per operation would otherwise
    /// issue thousands of redundant flushes over the same lines.
    pub fn phase_end(&mut self) {
        for (addr, len) in Self::coalesce(&mut self.regions) {
            self.dev.flush(addr, len);
        }
        self.dev.fence();
        self.regions.clear();
    }

    /// Sort + merge: consumes `regions`' order, returns disjoint,
    /// non-adjacent `(addr, len)` ranges covering the same bytes.
    fn coalesce(regions: &mut [(Addr, usize)]) -> Vec<(Addr, usize)> {
        regions.sort_unstable();
        let mut merged: Vec<(Addr, u64)> = Vec::new(); // (start, end)
        for &(addr, len) in regions.iter() {
            let end = addr + len as u64;
            match merged.last_mut() {
                Some((_, tail)) if addr <= *tail => *tail = (*tail).max(end),
                _ => merged.push((addr, end)),
            }
        }
        merged.into_iter().map(|(start, end)| (start, (end - start) as usize)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimDevice;
    use crate::profile::DeviceProfile;

    fn dev() -> Arc<SimDevice> {
        Arc::new(SimDevice::new(DeviceProfile::nvm_optane(), 1 << 20))
    }

    const LOG_AT: Addr = 1 << 19;

    #[test]
    fn committed_tx_survives_crash() {
        let d = dev();
        let mut tx = TxLog::new(d.clone(), LOG_AT, 4096);
        tx.begin().unwrap();
        tx.log_range(0, 8).unwrap();
        d.write_u64(0, 42);
        d.flush(0, 8); // data flush inside tx is allowed
        tx.commit().unwrap();
        d.crash();
        let mut tx2 = TxLog::new(d.clone(), LOG_AT, 4096);
        assert!(!tx2.recover().unwrap());
        assert_eq!(d.read_u64(0), 42);
    }

    #[test]
    fn uncommitted_tx_rolls_back_on_recovery() {
        let d = dev();
        d.write_u64(0, 7);
        d.persist(0, 8);
        let mut tx = TxLog::new(d.clone(), LOG_AT, 4096);
        tx.begin().unwrap();
        tx.log_range(0, 8).unwrap();
        d.write_u64(0, 99);
        d.persist(0, 8); // even persisted data must roll back
        d.crash();
        let mut tx2 = TxLog::new(d.clone(), LOG_AT, 4096);
        assert!(tx2.recover().unwrap());
        assert_eq!(d.read_u64(0), 7);
    }

    #[test]
    fn abort_restores_pre_images_in_reverse() {
        let d = dev();
        d.write_u64(0, 1);
        d.persist(0, 8);
        let mut tx = TxLog::new(d.clone(), LOG_AT, 4096);
        tx.begin().unwrap();
        tx.log_range(0, 8).unwrap();
        d.write_u64(0, 2);
        tx.log_range(0, 8).unwrap(); // second pre-image is 2
        d.write_u64(0, 3);
        tx.abort().unwrap();
        assert_eq!(d.read_u64(0), 1, "reverse application must restore the oldest image");
    }

    #[test]
    fn nested_begin_rejected() {
        let d = dev();
        let mut tx = TxLog::new(d, LOG_AT, 4096);
        tx.begin().unwrap();
        assert!(matches!(tx.begin(), Err(PmemError::TransactionAlreadyActive)));
    }

    #[test]
    fn log_outside_tx_rejected() {
        let d = dev();
        let mut tx = TxLog::new(d, LOG_AT, 4096);
        assert!(matches!(tx.log_range(0, 8), Err(PmemError::NoActiveTransaction)));
    }

    #[test]
    fn log_exhaustion_detected() {
        let d = dev();
        let mut tx = TxLog::new(d, LOG_AT, 64);
        tx.begin().unwrap();
        assert!(matches!(tx.log_range(0, 256), Err(PmemError::LogExhausted { .. })));
    }

    #[test]
    fn tx_logging_amplifies_writes() {
        // Writing N bytes under operation-level persistence must move more
        // device bytes than plain phase-level writes — that is the paper's
        // Figure 5(a)/(b) gap.
        let d_tx = dev();
        let mut tx = TxLog::new(d_tx.clone(), LOG_AT, 1 << 16);
        for i in 0..100u64 {
            tx.begin().unwrap();
            tx.log_range(i * 8, 8).unwrap();
            d_tx.write_u64(i * 8, i);
            tx.commit().unwrap();
        }
        let tx_ns = d_tx.stats().virtual_ns;

        let d_ph = dev();
        let mut ph = PhasePersist::new(d_ph.clone());
        for i in 0..100u64 {
            d_ph.write_u64(i * 8, i);
        }
        ph.track(0, 800);
        ph.phase_end();
        let ph_ns = d_ph.stats().virtual_ns;
        assert!(tx_ns > ph_ns * 2, "tx {tx_ns} should cost >2x phase {ph_ns}");
    }

    #[test]
    fn phase_persist_makes_data_durable() {
        let d = dev();
        let mut ph = PhasePersist::new(d.clone());
        d.write_u64(128, 5);
        ph.track(128, 8);
        ph.phase_end();
        d.crash();
        assert_eq!(d.read_u64(128), 5);
    }

    #[test]
    fn phase_crash_before_phase_end_loses_phase_data() {
        let d = dev();
        let mut ph = PhasePersist::new(d.clone());
        d.write_u64(128, 5);
        ph.track(128, 8);
        // no phase_end
        d.crash();
        assert_eq!(d.read_u64(128), 0);
    }

    #[test]
    fn relogging_a_range_in_one_tx_is_free() {
        // PMDK's tx_add_range is idempotent per transaction: the second
        // log of the same range must not consume log space or device time
        // beyond the dedup check itself.
        let d = dev();
        let mut tx = TxLog::new(d.clone(), LOG_AT, 4096);
        tx.begin().unwrap();
        tx.log_range(0, 8).unwrap();
        let after_first = d.stats().log_bytes;
        tx.log_range(0, 8).unwrap();
        assert_eq!(d.stats().log_bytes, after_first);
        tx.commit().unwrap();
        // A new transaction logs the range again.
        tx.begin().unwrap();
        tx.log_range(0, 8).unwrap();
        assert!(d.stats().log_bytes > after_first);
        tx.commit().unwrap();
    }

    #[test]
    fn dedup_still_restores_the_tx_start_image() {
        let d = dev();
        d.write_u64(0, 1);
        d.persist(0, 8);
        let mut tx = TxLog::new(d.clone(), LOG_AT, 4096);
        tx.begin().unwrap();
        tx.log_range(0, 8).unwrap();
        d.write_u64(0, 2);
        tx.log_range(0, 8).unwrap(); // deduped — pre-image stays 1
        d.write_u64(0, 3);
        tx.abort().unwrap();
        assert_eq!(d.read_u64(0), 1);
    }

    #[test]
    fn recover_on_clean_log_is_noop() {
        let d = dev();
        let mut tx = TxLog::new(d, LOG_AT, 4096);
        assert!(!tx.recover().unwrap());
    }

    #[test]
    fn phase_end_coalesces_duplicate_and_adjacent_ranges() {
        // 100 tracks of the same range plus 10 adjacent ones must collapse
        // into a single flush — the stats counter proves it.
        let d = dev();
        let mut ph = PhasePersist::new(d.clone());
        for _ in 0..100 {
            ph.track(4096, 256);
        }
        for i in 0..10u64 {
            ph.track(4096 + 256 + i * 64, 64); // adjacent chain
        }
        assert_eq!(ph.tracked(), 110);
        let before = d.stats();
        ph.phase_end();
        let delta = d.stats().since(&before);
        assert_eq!(delta.flushes, 1, "110 tracked regions must coalesce to one flush");
        assert_eq!(delta.fences, 1);
    }

    #[test]
    fn phase_end_keeps_disjoint_ranges_separate() {
        let d = dev();
        let mut ph = PhasePersist::new(d.clone());
        ph.track(0, 64);
        ph.track(8192, 64); // a gap — must not be bridged
        let before = d.stats();
        ph.phase_end();
        assert_eq!(d.stats().since(&before).flushes, 2);
    }

    #[test]
    fn coalesced_phase_end_is_still_durable() {
        let d = dev();
        let mut ph = PhasePersist::new(d.clone());
        d.write_u64(128, 5);
        d.write_u64(136, 6);
        ph.track(128, 8);
        ph.track(128, 8); // duplicate
        ph.track(136, 8); // adjacent
        ph.phase_end();
        d.crash();
        assert_eq!(d.read_u64(128), 5);
        assert_eq!(d.read_u64(136), 6);
    }

    #[test]
    fn recovery_truncates_at_torn_entry() {
        // Seal two entries, then corrupt the second one's payload on media
        // (as a torn persist would): recovery must apply only the first.
        let d = dev();
        d.write_u64(0, 1);
        d.write_u64(8, 2);
        d.persist(0, 16);
        let mut tx = TxLog::new(d.clone(), LOG_AT, 4096);
        tx.begin().unwrap();
        tx.log_range(0, 8).unwrap();
        d.write_u64(0, 11);
        tx.log_range(8, 8).unwrap();
        d.write_u64(8, 22);
        d.persist(0, 16);
        // Entry 1 sits at LOG_HEADER + 24 + 8; smash one payload byte.
        let entry1_payload = LOG_AT + 16 + 32 + 16;
        d.poke(entry1_payload, &[0xFF]);
        let mut tx2 = TxLog::new(d.clone(), LOG_AT, 4096);
        assert!(tx2.recover().unwrap());
        assert_eq!(d.read_u64(0), 1, "entry 0 must roll back");
        assert_eq!(d.read_u64(8), 22, "the torn entry must be truncated, not applied");
    }

    #[test]
    fn stale_entries_from_a_previous_tx_never_validate() {
        // tx1 commits; tx2 begins and crashes before logging anything.
        // tx1's entries are still physically in the log region, but their
        // seals are bound to tx1's id — recovery must not roll them back.
        let d = dev();
        d.write_u64(0, 7);
        d.persist(0, 8);
        let mut tx = TxLog::new(d.clone(), LOG_AT, 4096);
        tx.begin().unwrap();
        tx.log_range(0, 8).unwrap();
        d.write_u64(0, 8);
        d.persist(0, 8);
        tx.commit().unwrap();
        tx.begin().unwrap(); // activation is durable; no entries yet
        d.crash();
        let mut tx2 = TxLog::new(d.clone(), LOG_AT, 4096);
        assert!(tx2.recover().unwrap());
        assert_eq!(d.read_u64(0), 8, "committed data must survive: stale entries are dead");
    }

    #[test]
    fn sealed_entry_with_out_of_range_target_is_corrupt_not_panic() {
        // Hand-forge a correctly-sealed entry whose target lies outside
        // the device: recovery must return CorruptImage, never apply it.
        let d = dev();
        let bad_addr = d.capacity(); // one past the end
        let pre = [0u8; 8];
        let tx_id = 3u64;
        let mut entry = Vec::new();
        entry.extend_from_slice(&bad_addr.to_le_bytes());
        entry.extend_from_slice(&8u64.to_le_bytes());
        entry.extend_from_slice(&pre);
        entry.extend_from_slice(
            &(super::SEAL_MAGIC ^ super::entry_crc(tx_id, bad_addr, 8, &pre)).to_le_bytes(),
        );
        d.poke(LOG_AT, &tx_id.to_le_bytes()); // active tx id
        d.poke(LOG_AT + 8, &tx_id.to_le_bytes());
        d.poke(LOG_AT + 16, &entry);
        let mut tx = TxLog::new(d, LOG_AT, 4096);
        assert!(matches!(tx.recover(), Err(PmemError::CorruptImage(_))));
    }

    #[test]
    fn garbage_log_region_recovers_to_clean_without_rollback() {
        let d = dev();
        d.write_u64(0, 5);
        d.persist(0, 8);
        // Fill the log region with pseudo-random garbage and claim a
        // transaction was open.
        let mut rng = crate::faultsim::Prng::new(0xBAD);
        let garbage: Vec<u8> = (0..4096).map(|_| rng.next_u64() as u8).collect();
        d.poke(LOG_AT, &garbage);
        d.poke(LOG_AT, &1u64.to_le_bytes());
        let mut tx = TxLog::new(d.clone(), LOG_AT, 4096);
        // No sealed entry can validate against tx id 1 by chance, so this
        // must truncate at entry 0 and leave the data alone.
        assert!(tx.recover().unwrap());
        assert_eq!(d.read_u64(0), 5);
        // The log is retired afterwards.
        let mut tx2 = TxLog::new(d, LOG_AT, 4096);
        assert!(!tx2.recover().unwrap());
    }

    #[test]
    fn crc64_is_stable_and_discriminating() {
        assert_eq!(crc64(b""), 0);
        assert_ne!(crc64(b"123456789"), 0);
        assert_ne!(crc64(b"hello"), crc64(b"hellp"));
        assert_eq!(crc64(b"hello"), crc64(b"hello"));
    }
}
