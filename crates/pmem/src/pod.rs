//! Plain-old-data trait for typed device access.
//!
//! Values are stored little-endian through safe byte conversions — no
//! `unsafe` transmutes — so the persistent image format is well defined and
//! portable.

/// Fixed-size value that can be stored on a simulated device.
pub trait Pod: Copy + Default {
    /// Encoded size in bytes.
    const SIZE: usize;

    /// Write the little-endian encoding into `buf` (`buf.len() == SIZE`).
    fn store(&self, buf: &mut [u8]);

    /// Read a value from its little-endian encoding.
    fn load(buf: &[u8]) -> Self;
}

macro_rules! impl_pod_int {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            #[inline]
            fn store(&self, buf: &mut [u8]) {
                buf.copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn load(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf.try_into().expect("pod size mismatch"))
            }
        }
    )*};
}

impl_pod_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Pod for f64 {
    const SIZE: usize = 8;
    #[inline]
    fn store(&self, buf: &mut [u8]) {
        buf.copy_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn load(buf: &[u8]) -> Self {
        f64::from_le_bytes(buf.try_into().expect("pod size mismatch"))
    }
}

/// Pair encoding, used for `(id, freq)` tuples in the DAG pool.
impl<A: Pod, B: Pod> Pod for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;
    #[inline]
    fn store(&self, buf: &mut [u8]) {
        self.0.store(&mut buf[..A::SIZE]);
        self.1.store(&mut buf[A::SIZE..]);
    }
    #[inline]
    fn load(buf: &[u8]) -> Self {
        (A::load(&buf[..A::SIZE]), B::load(&buf[A::SIZE..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Pod + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = vec![0u8; T::SIZE];
        v.store(&mut buf);
        assert_eq!(T::load(&buf), v);
    }

    #[test]
    fn ints_round_trip() {
        round_trip(0xABu8);
        round_trip(0xABCDu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(0x0123_4567_89AB_CDEFu64);
        round_trip(-42i32);
        round_trip(i64::MIN);
    }

    #[test]
    fn floats_round_trip() {
        round_trip(std::f64::consts::PI);
        round_trip(-0.0f64);
    }

    #[test]
    fn pairs_round_trip() {
        round_trip((7u32, 9u32));
        round_trip((1u64, 250u32));
        assert_eq!(<(u32, u32)>::SIZE, 8);
    }

    #[test]
    fn encoding_is_little_endian() {
        let mut buf = [0u8; 4];
        0x0102_0304u32.store(&mut buf);
        assert_eq!(buf, [4, 3, 2, 1]);
    }
}
