//! Device cost profiles.
//!
//! A [`DeviceProfile`] captures the handful of parameters the virtual-time
//! model needs: media line (or block) size, per-miss latencies, transfer
//! bandwidth, and how large the cache sitting in front of the media is.
//!
//! The presets use publicly reported figures for the hardware classes in the
//! paper's testbed (Optane PMem 200, Optane P5800X SSD, SAS HDD, DDR4-3200).
//! Absolute values matter less than the *ratios* between devices — those are
//! what determine the shape of every experiment.

use serde::{Deserialize, Serialize};

/// Broad class of the simulated device. Used by the allocation ledger to
/// attribute resident bytes (the DRAM space-savings experiment, §VI-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Volatile DRAM.
    Dram,
    /// Byte-addressable non-volatile memory (Optane PMem class).
    Nvm,
    /// Block-addressable flash (Optane / NVMe SSD class).
    Ssd,
    /// Block-addressable spinning disk.
    Hdd,
}

impl DeviceKind {
    /// Whether loads/stores can target arbitrary byte offsets without paying
    /// a full block I/O.
    pub fn is_byte_addressable(self) -> bool {
        matches!(self, DeviceKind::Dram | DeviceKind::Nvm)
    }

    /// Whether data survives a crash once flushed.
    pub fn is_persistent(self) -> bool {
        !matches!(self, DeviceKind::Dram)
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeviceKind::Dram => "DRAM",
            DeviceKind::Nvm => "NVM",
            DeviceKind::Ssd => "SSD",
            DeviceKind::Hdd => "HDD",
        };
        f.write_str(s)
    }
}

/// Cost model parameters for one simulated device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable name used in experiment output.
    pub name: &'static str,
    /// Device class.
    pub kind: DeviceKind,
    /// Media access granularity in bytes. 256 B for Optane 3D-XPoint media,
    /// 64 B for DRAM (a cache line), 4 KiB for block devices.
    pub line_size: usize,
    /// Latency charged for a line/block read miss, in nanoseconds.
    pub read_latency_ns: u64,
    /// Latency charged for a line/block write-back, in nanoseconds.
    pub write_latency_ns: u64,
    /// Sequential read bandwidth in bytes per microsecond (= MB/s / 1000).
    /// Charged per byte transferred on a miss in addition to latency.
    pub read_bw_bytes_per_us: u64,
    /// Sequential write bandwidth in bytes per microsecond.
    pub write_bw_bytes_per_us: u64,
    /// Cost of an access that hits in the front cache, in nanoseconds.
    pub hit_ns: u64,
    /// Cost of a persistence fence (`sfence` class), in nanoseconds.
    pub fence_ns: u64,
    /// Capacity of the cache in front of the media, in bytes. For
    /// byte-addressable devices this models the CPU cache hierarchy; for
    /// block devices it models the DRAM page cache, which the paper caps at
    /// 20% of the uncompressed dataset size.
    pub cache_bytes: usize,
    /// Associativity of the front cache.
    pub cache_ways: usize,
}

impl DeviceProfile {
    /// DDR4-3200 DRAM behind a CPU cache. The theoretical upper bound
    /// platform in the paper (pure-DRAM TADOC, Figure 6).
    pub fn dram() -> Self {
        DeviceProfile {
            name: "DRAM",
            kind: DeviceKind::Dram,
            line_size: 64,
            read_latency_ns: 80,
            write_latency_ns: 80,
            read_bw_bytes_per_us: 25_000, // ~25 GB/s per channel pair
            write_bw_bytes_per_us: 25_000,
            hit_ns: 2,
            fence_ns: 10,
            cache_bytes: 2 << 20, // 2 MiB LLC share
            cache_ways: 16,
        }
    }

    /// Intel Optane PMem 200 class device in App Direct (direct access)
    /// mode: 256 B media lines, read latency ~3-4x DRAM, write latency and
    /// bandwidth substantially worse than reads.
    pub fn nvm_optane() -> Self {
        DeviceProfile {
            name: "NVM",
            kind: DeviceKind::Nvm,
            line_size: 256,
            read_latency_ns: 320,
            write_latency_ns: 900,
            read_bw_bytes_per_us: 6_000,  // ~6 GB/s per DIMM set
            write_bw_bytes_per_us: 2_000, // ~2 GB/s
            hit_ns: 2,
            fence_ns: 50,
            cache_bytes: 2 << 20,
            cache_ways: 16,
        }
    }

    /// Resistive RAM (ReRAM) — one of the paper's §VI-F migration targets.
    /// Reported characteristics: reads close to DRAM, writes faster than
    /// 3D-XPoint, smaller access granularity (crossbar arrays), lower
    /// bandwidth per bank.
    pub fn reram() -> Self {
        DeviceProfile {
            name: "ReRAM",
            kind: DeviceKind::Nvm,
            line_size: 64,
            read_latency_ns: 150,
            write_latency_ns: 500,
            read_bw_bytes_per_us: 4_000,
            write_bw_bytes_per_us: 1_500,
            hit_ns: 2,
            fence_ns: 40,
            cache_bytes: 2 << 20,
            cache_ways: 16,
        }
    }

    /// Phase-change memory (PCM) — the paper's other §VI-F migration
    /// target. Slower, strongly asymmetric writes (SET/RESET pulses), 64 B
    /// rows.
    pub fn pcm() -> Self {
        DeviceProfile {
            name: "PCM",
            kind: DeviceKind::Nvm,
            line_size: 64,
            read_latency_ns: 250,
            write_latency_ns: 2_500,
            read_bw_bytes_per_us: 3_000,
            write_bw_bytes_per_us: 600,
            hit_ns: 2,
            fence_ns: 60,
            cache_bytes: 2 << 20,
            cache_ways: 16,
        }
    }

    /// Intel Optane P5800X class NVMe SSD accessed through a file system
    /// with a budgeted page cache.
    pub fn ssd_optane(page_cache_bytes: usize) -> Self {
        DeviceProfile {
            name: "SSD",
            kind: DeviceKind::Ssd,
            line_size: 4096,
            read_latency_ns: 6_000, // ~6 us random 4K
            write_latency_ns: 8_000,
            read_bw_bytes_per_us: 6_000,
            write_bw_bytes_per_us: 5_000,
            hit_ns: 60, // page-cache hit still goes through the kernel copy
            fence_ns: 5_000,
            cache_bytes: page_cache_bytes,
            cache_ways: 16,
        }
    }

    /// 7.2k RPM SAS HDD with a budgeted page cache. Random 4 KiB access pays
    /// a seek; sequential bandwidth is decent.
    pub fn hdd_sas(page_cache_bytes: usize) -> Self {
        DeviceProfile {
            name: "HDD",
            kind: DeviceKind::Hdd,
            line_size: 4096,
            read_latency_ns: 45_000, // short-seek average; page cache absorbs most re-reads
            write_latency_ns: 45_000,
            read_bw_bytes_per_us: 220,
            write_bw_bytes_per_us: 200,
            hit_ns: 60,
            fence_ns: 8_000,
            cache_bytes: page_cache_bytes,
            cache_ways: 16,
        }
    }

    /// Nanoseconds charged for a read miss of one line, including transfer.
    pub fn read_miss_ns(&self) -> u64 {
        self.read_latency_ns + (self.line_size as u64 * 1000) / (self.read_bw_bytes_per_us * 1000)
    }

    /// Nanoseconds charged for writing back one dirty line, incl. transfer.
    pub fn write_back_ns(&self) -> u64 {
        self.write_latency_ns + (self.line_size as u64 * 1000) / (self.write_bw_bytes_per_us * 1000)
    }

    /// Nanoseconds for reading the *next sequential* line: bandwidth plus
    /// a small fraction of the access latency (read-ahead hides the rest).
    pub fn read_seq_ns(&self) -> u64 {
        self.read_latency_ns / 10
            + (self.line_size as u64 * 1000) / (self.read_bw_bytes_per_us * 1000)
    }

    /// Nanoseconds for writing back the *next sequential* line.
    pub fn write_seq_ns(&self) -> u64 {
        self.write_latency_ns / 10
            + (self.line_size as u64 * 1000) / (self.write_bw_bytes_per_us * 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_classify_addressability() {
        assert!(DeviceKind::Dram.is_byte_addressable());
        assert!(DeviceKind::Nvm.is_byte_addressable());
        assert!(!DeviceKind::Ssd.is_byte_addressable());
        assert!(!DeviceKind::Hdd.is_byte_addressable());
    }

    #[test]
    fn kinds_classify_persistence() {
        assert!(!DeviceKind::Dram.is_persistent());
        assert!(DeviceKind::Nvm.is_persistent());
        assert!(DeviceKind::Ssd.is_persistent());
        assert!(DeviceKind::Hdd.is_persistent());
    }

    #[test]
    fn nvm_write_costs_more_than_read() {
        let p = DeviceProfile::nvm_optane();
        assert!(p.write_back_ns() > p.read_miss_ns());
    }

    #[test]
    fn dram_is_symmetric_and_cheaper_than_nvm() {
        let d = DeviceProfile::dram();
        let n = DeviceProfile::nvm_optane();
        assert_eq!(d.read_latency_ns, d.write_latency_ns);
        assert!(d.read_miss_ns() < n.read_miss_ns());
        assert!(d.write_back_ns() < n.write_back_ns());
    }

    #[test]
    fn device_latency_ordering_matches_hardware_classes() {
        let budget = 1 << 20;
        let dram = DeviceProfile::dram().read_miss_ns();
        let nvm = DeviceProfile::nvm_optane().read_miss_ns();
        let ssd = DeviceProfile::ssd_optane(budget).read_miss_ns();
        let hdd = DeviceProfile::hdd_sas(budget).read_miss_ns();
        assert!(dram < nvm && nvm < ssd && ssd < hdd);
    }

    #[test]
    fn optane_line_is_256_bytes() {
        assert_eq!(DeviceProfile::nvm_optane().line_size, 256);
    }

    #[test]
    fn alternative_nvm_architectures_are_persistent_and_byte_addressable() {
        for p in [DeviceProfile::reram(), DeviceProfile::pcm()] {
            assert_eq!(p.kind, DeviceKind::Nvm, "{}", p.name);
            assert!(p.kind.is_byte_addressable());
            assert!(p.kind.is_persistent());
        }
    }

    #[test]
    fn pcm_writes_are_the_most_asymmetric() {
        let pcm = DeviceProfile::pcm();
        let optane = DeviceProfile::nvm_optane();
        let reram = DeviceProfile::reram();
        let asym = |p: &DeviceProfile| p.write_latency_ns as f64 / p.read_latency_ns as f64;
        assert!(asym(&pcm) > asym(&optane));
        assert!(asym(&pcm) > asym(&reram));
    }

    #[test]
    fn sequential_access_is_cheaper_than_random_in_every_profile() {
        for p in [
            DeviceProfile::dram(),
            DeviceProfile::nvm_optane(),
            DeviceProfile::reram(),
            DeviceProfile::pcm(),
            DeviceProfile::ssd_optane(1 << 20),
            DeviceProfile::hdd_sas(1 << 20),
        ] {
            assert!(p.read_seq_ns() < p.read_miss_ns(), "{}", p.name);
            assert!(p.write_seq_ns() < p.write_back_ns(), "{}", p.name);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceKind::Nvm.to_string(), "NVM");
        assert_eq!(DeviceKind::Hdd.to_string(), "HDD");
    }
}
