//! Access statistics and the virtual clock.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`crate::SimDevice`].
///
/// `virtual_ns` is the model time: the sum of the costs of every access,
/// miss, write-back, flush and fence the device has served. Experiments
/// report differences of snapshots of this value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Read operations issued (typed loads and bulk reads each count once).
    pub reads: u64,
    /// Write operations issued.
    pub writes: u64,
    /// Bytes moved by read operations.
    pub bytes_read: u64,
    /// Bytes moved by write operations.
    pub bytes_written: u64,
    /// Media lines fetched because of cache read/write misses.
    pub line_misses: u64,
    /// Accesses that hit the front cache.
    pub line_hits: u64,
    /// Dirty lines written back to media (evictions + flushes).
    pub write_backs: u64,
    /// Explicit flush operations.
    pub flushes: u64,
    /// Persistence fences.
    pub fences: u64,
    /// Bytes copied into undo logs by transactional persistence.
    pub log_bytes: u64,
    /// Write attempts re-issued against transiently faulted lines before
    /// the bounded retry budget succeeded (endurance-relevant: retries are
    /// extra media writes).
    pub media_retries: u64,
    /// Accumulated model time in nanoseconds.
    pub virtual_ns: u64,
}

impl AccessStats {
    /// `self - earlier`, element-wise. Panics in debug builds if `earlier`
    /// is not actually an earlier snapshot of the same device.
    pub fn since(&self, earlier: &AccessStats) -> AccessStats {
        debug_assert!(self.virtual_ns >= earlier.virtual_ns);
        AccessStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            line_misses: self.line_misses - earlier.line_misses,
            line_hits: self.line_hits - earlier.line_hits,
            write_backs: self.write_backs - earlier.write_backs,
            flushes: self.flushes - earlier.flushes,
            fences: self.fences - earlier.fences,
            log_bytes: self.log_bytes - earlier.log_bytes,
            media_retries: self.media_retries - earlier.media_retries,
            virtual_ns: self.virtual_ns - earlier.virtual_ns,
        }
    }

    /// Fraction of line-granular accesses that hit the front cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.line_hits + self.line_misses;
        if total == 0 {
            return 0.0;
        }
        self.line_hits as f64 / total as f64
    }

    /// Model time in seconds.
    pub fn virtual_secs(&self) -> f64 {
        self.virtual_ns as f64 / 1e9
    }

    /// Number of persistence-ordering points reached so far: every flush
    /// and every fence is a distinct point a crash-sweep harness can
    /// schedule a failure at (see [`crate::faultsim`]).
    pub fn persist_points(&self) -> u64 {
        self.flushes + self.fences
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fields() {
        let a = AccessStats { reads: 10, virtual_ns: 100, ..Default::default() };
        let b = AccessStats { reads: 4, virtual_ns: 40, ..Default::default() };
        let d = a.since(&b);
        assert_eq!(d.reads, 6);
        assert_eq!(d.virtual_ns, 60);
    }

    #[test]
    fn hit_rate_handles_zero_accesses() {
        assert_eq!(AccessStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_computes_fraction() {
        let s = AccessStats { line_hits: 3, line_misses: 1, ..Default::default() };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn virtual_secs_scales() {
        let s = AccessStats { virtual_ns: 2_500_000_000, ..Default::default() };
        assert!((s.virtual_secs() - 2.5).abs() < 1e-12);
    }
}
