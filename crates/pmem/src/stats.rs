//! Access statistics and the virtual clock.

use serde::{Deserialize, Serialize};

use crate::json::Json;

/// Counters accumulated by a [`crate::SimDevice`].
///
/// `virtual_ns` is the model time: the sum of the costs of every access,
/// miss, write-back, flush and fence the device has served. Experiments
/// report differences of snapshots of this value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Read operations issued (typed loads and bulk reads each count once).
    pub reads: u64,
    /// Write operations issued.
    pub writes: u64,
    /// Bytes moved by read operations.
    pub bytes_read: u64,
    /// Bytes moved by write operations.
    pub bytes_written: u64,
    /// Media lines fetched because of cache read/write misses.
    pub line_misses: u64,
    /// Accesses that hit the front cache.
    pub line_hits: u64,
    /// Dirty lines written back to media (evictions + flushes).
    pub write_backs: u64,
    /// Explicit flush operations.
    pub flushes: u64,
    /// Persistence fences.
    pub fences: u64,
    /// Bytes copied into undo logs by transactional persistence.
    pub log_bytes: u64,
    /// Write attempts re-issued against transiently faulted lines before
    /// the bounded retry budget succeeded (endurance-relevant: retries are
    /// extra media writes).
    pub media_retries: u64,
    /// Accumulated model time in nanoseconds.
    pub virtual_ns: u64,
}

/// Apply `$op` to every counter field of [`AccessStats`]; keeps the
/// element-wise helpers in sync with the field list.
macro_rules! for_each_field {
    ($op:ident) => {
        $op!(
            reads,
            writes,
            bytes_read,
            bytes_written,
            line_misses,
            line_hits,
            write_backs,
            flushes,
            fences,
            log_bytes,
            media_retries,
            virtual_ns
        )
    };
}

impl AccessStats {
    /// `self - earlier`, element-wise, checking *every* counter: returns
    /// the name of the first field on which `earlier` is not actually an
    /// earlier snapshot of the same device (a stale or cross-device
    /// snapshot), instead of silently underflowing.
    pub fn checked_since(&self, earlier: &AccessStats) -> Result<AccessStats, &'static str> {
        macro_rules! check {
            ($($f:ident),+) => {
                $(if self.$f < earlier.$f {
                    return Err(stringify!($f));
                })+
            };
        }
        for_each_field!(check);
        Ok(self.saturating_since(earlier))
    }

    /// `self - earlier`, element-wise, saturating at zero per field.
    pub fn saturating_since(&self, earlier: &AccessStats) -> AccessStats {
        macro_rules! sub {
            ($($f:ident),+) => {
                AccessStats { $($f: self.$f.saturating_sub(earlier.$f)),+ }
            };
        }
        for_each_field!(sub)
    }

    /// `self - earlier`, element-wise. Every field is validated, not just
    /// `virtual_ns`: in debug builds a stale snapshot panics with the name
    /// of the offending counter; in release builds the subtraction
    /// saturates at zero instead of underflow-panicking without diagnosis.
    pub fn since(&self, earlier: &AccessStats) -> AccessStats {
        match self.checked_since(earlier) {
            Ok(delta) => delta,
            Err(field) => {
                debug_assert!(
                    false,
                    "AccessStats::since: `{field}` went backwards \
                     (now {self:?}, claimed-earlier {earlier:?}) — \
                     not an earlier snapshot of the same device"
                );
                self.saturating_since(earlier)
            }
        }
    }

    /// Add `other` into `self`, element-wise (span-tree roll-ups).
    pub fn accumulate(&mut self, other: &AccessStats) {
        macro_rules! add {
            ($($f:ident),+) => {
                $(self.$f += other.$f;)+
            };
        }
        for_each_field!(add);
    }

    /// Serialize into a [`Json`] object, one member per counter field.
    pub fn to_json(&self) -> Json {
        macro_rules! obj {
            ($($f:ident),+) => {
                Json::object([$((stringify!($f), Json::U64(self.$f))),+])
            };
        }
        for_each_field!(obj)
    }

    /// Deserialize from a [`Json`] object produced by [`Self::to_json`].
    /// Missing members default to zero; a non-object or a non-integer
    /// member is an error naming the field.
    pub fn from_json(v: &Json) -> Result<AccessStats, String> {
        if v.as_obj().is_none() {
            return Err("AccessStats: expected an object".to_string());
        }
        macro_rules! read {
            ($($f:ident),+) => {
                AccessStats {
                    $($f: match v.get(stringify!($f)) {
                        None => 0,
                        Some(m) => m.as_u64().ok_or_else(|| {
                            format!("AccessStats: `{}` is not a u64", stringify!($f))
                        })?,
                    }),+
                }
            };
        }
        Ok(for_each_field!(read))
    }

    /// Fraction of line-granular accesses that hit the front cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.line_hits + self.line_misses;
        if total == 0 {
            return 0.0;
        }
        self.line_hits as f64 / total as f64
    }

    /// Model time in seconds.
    pub fn virtual_secs(&self) -> f64 {
        self.virtual_ns as f64 / 1e9
    }

    /// Number of persistence-ordering points reached so far: every flush
    /// and every fence is a distinct point a crash-sweep harness can
    /// schedule a failure at (see [`crate::faultsim`]).
    pub fn persist_points(&self) -> u64 {
        self.flushes + self.fences
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fields() {
        let a = AccessStats { reads: 10, virtual_ns: 100, ..Default::default() };
        let b = AccessStats { reads: 4, virtual_ns: 40, ..Default::default() };
        let d = a.since(&b);
        assert_eq!(d.reads, 6);
        assert_eq!(d.virtual_ns, 60);
    }

    #[test]
    fn checked_since_names_the_backwards_field() {
        let newer = AccessStats { reads: 10, flushes: 2, virtual_ns: 100, ..Default::default() };
        let stale = AccessStats { reads: 10, flushes: 5, virtual_ns: 90, ..Default::default() };
        // `virtual_ns` moved forward but `flushes` went backwards: the old
        // debug assertion (virtual_ns only) missed exactly this case.
        assert_eq!(newer.checked_since(&stale), Err("flushes"));
        let ok = AccessStats { reads: 4, virtual_ns: 40, ..Default::default() };
        assert_eq!(newer.checked_since(&ok).unwrap().reads, 6);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let a = AccessStats { reads: 1, virtual_ns: 10, ..Default::default() };
        let b = AccessStats { reads: 5, virtual_ns: 3, ..Default::default() };
        let d = a.saturating_since(&b);
        assert_eq!(d.reads, 0);
        assert_eq!(d.virtual_ns, 7);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "`writes` went backwards")]
    fn since_panics_with_field_name_in_debug() {
        let a = AccessStats { virtual_ns: 100, ..Default::default() };
        let b = AccessStats { writes: 3, virtual_ns: 50, ..Default::default() };
        let _ = a.since(&b);
    }

    #[test]
    fn accumulate_adds_fields() {
        let mut a = AccessStats { reads: 1, virtual_ns: 10, ..Default::default() };
        a.accumulate(&AccessStats { reads: 2, flushes: 4, virtual_ns: 5, ..Default::default() });
        assert_eq!(a.reads, 3);
        assert_eq!(a.flushes, 4);
        assert_eq!(a.virtual_ns, 15);
    }

    #[test]
    fn hit_rate_handles_zero_accesses() {
        assert_eq!(AccessStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_computes_fraction() {
        let s = AccessStats { line_hits: 3, line_misses: 1, ..Default::default() };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn json_round_trips_every_field() {
        let s = AccessStats {
            reads: 1,
            writes: 2,
            bytes_read: 3,
            bytes_written: 4,
            line_misses: 5,
            line_hits: 6,
            write_backs: 7,
            flushes: 8,
            fences: 9,
            log_bytes: 10,
            media_retries: 11,
            virtual_ns: 12,
        };
        let back = AccessStats::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        // Missing members default to zero (forward-compatible reads).
        let partial = Json::object([("reads", 5u64)]);
        assert_eq!(AccessStats::from_json(&partial).unwrap().reads, 5);
        // Type errors name the field.
        let bad = Json::object([("writes", Json::Str("x".into()))]);
        assert!(AccessStats::from_json(&bad).unwrap_err().contains("writes"));
        assert!(AccessStats::from_json(&Json::Null).is_err());
    }

    #[test]
    fn virtual_secs_scales() {
        let s = AccessStats { virtual_ns: 2_500_000_000, ..Default::default() };
        assert!((s.virtual_secs() - 2.5).abs() < 1e-12);
    }
}
