//! Snapshot-keyed task-output cache.
//!
//! Entries are keyed by `(grammar snapshot fingerprint, QueryKey)`, so two
//! tenants asking the same shaped question share one entry, and a newly
//! installed snapshot can never serve stale bytes — its fingerprint differs,
//! so old entries simply never match (and are swept on install).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use ntadoc::{QueryKey, TaskOutput};

/// FIFO-evicting map from `(snapshot, query key)` to a shared task output.
///
/// FIFO rather than LRU keeps eviction order a pure function of the insert
/// sequence — one less source of replay divergence, and the hot-entry reuse
/// the daemon cares about (identical queries in one burst) is insensitive to
/// the difference.
///
/// Entries nest by snapshot (`snapshot → key → output`) so a lookup borrows
/// the caller's [`QueryKey`]: the daemon hot path takes zero heap
/// allocations on a hit — a `QueryKey` holds heap-owning fields, and the
/// old flat `(u64, QueryKey)` key forced a clone per lookup just to probe.
#[derive(Debug, Default)]
pub struct ResultCache {
    capacity: usize,
    entries: HashMap<u64, HashMap<QueryKey, Arc<TaskOutput>>>,
    order: VecDeque<(u64, QueryKey)>,
    resident: usize,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// Cache holding at most `capacity` outputs; `0` disables caching
    /// (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        ResultCache { capacity, ..ResultCache::default() }
    }

    /// Look up a query under a snapshot, counting the hit or miss. Borrows
    /// the key — no allocation on either outcome.
    pub fn get(&mut self, snapshot: u64, key: &QueryKey) -> Option<Arc<TaskOutput>> {
        let found = self.entries.get(&snapshot).and_then(|m| m.get(key)).cloned();
        match found {
            Some(out) => {
                self.hits += 1;
                Some(out)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert an output, evicting the oldest entry when at capacity.
    pub fn insert(&mut self, snapshot: u64, key: QueryKey, out: Arc<TaskOutput>) {
        if self.capacity == 0 {
            return;
        }
        let lane = self.entries.entry(snapshot).or_default();
        if lane.insert(key.clone(), out).is_some() {
            return; // refreshed in place; insertion order unchanged
        }
        self.resident += 1;
        self.order.push_back((snapshot, key));
        while self.resident > self.capacity {
            let Some((s, k)) = self.order.pop_front() else { break };
            if let Some(lane) = self.entries.get_mut(&s) {
                if lane.remove(&k).is_some() {
                    self.resident -= 1;
                }
                if lane.is_empty() {
                    self.entries.remove(&s);
                }
            }
        }
    }

    /// Drop every entry not belonging to `snapshot` — called when a new
    /// grammar snapshot is installed, since old entries can never hit again.
    pub fn retain_snapshot(&mut self, snapshot: u64) {
        self.retain_snapshots(&[snapshot]);
    }

    /// Drop every entry whose snapshot is not in `snapshots`. The daemon
    /// keeps {draining, current} alive while an old lane drains, then
    /// narrows to {current} the moment the drain lane empties — so exactly
    /// the superseded entries are invalidated, no sooner and no later.
    pub fn retain_snapshots(&mut self, snapshots: &[u64]) {
        self.entries.retain(|s, _| snapshots.contains(s));
        self.order.retain(|(s, _)| snapshots.contains(s));
        self.resident = self.entries.values().map(HashMap::len).sum();
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.resident
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.resident == 0
    }

    /// Lifetime (hits, misses) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Fraction of lookups served from cache; `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntadoc::{Query, Task, TenantId};

    fn key(task: Task, k: Option<usize>) -> QueryKey {
        let q = Query::new(TenantId(0), task);
        match k {
            Some(k) => q.top_k(k).key(),
            None => q.key(),
        }
    }

    fn out(word: &str, n: u64) -> Arc<TaskOutput> {
        let mut m = std::collections::BTreeMap::new();
        m.insert(word.to_string(), n);
        Arc::new(TaskOutput::WordCount(m))
    }

    #[test]
    fn fifo_eviction_and_counters() {
        let mut c = ResultCache::new(2);
        c.insert(1, key(Task::WordCount, None), out("a", 1));
        c.insert(1, key(Task::WordCount, Some(3)), out("b", 2));
        c.insert(1, key(Task::Sort, None), out("c", 3)); // evicts the first
        assert_eq!(c.len(), 2);
        assert!(c.get(1, &key(Task::WordCount, None)).is_none());
        assert!(c.get(1, &key(Task::Sort, None)).is_some());
        assert_eq!(c.counters(), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_isolates_entries() {
        let mut c = ResultCache::new(8);
        c.insert(1, key(Task::WordCount, None), out("a", 1));
        assert!(c.get(2, &key(Task::WordCount, None)).is_none());
        c.retain_snapshot(2);
        assert!(c.is_empty());
    }

    #[test]
    fn retain_snapshots_keeps_exactly_the_named_generations() {
        let mut c = ResultCache::new(8);
        c.insert(1, key(Task::WordCount, None), out("a", 1));
        c.insert(2, key(Task::WordCount, None), out("b", 2));
        c.insert(3, key(Task::WordCount, None), out("c", 3));
        c.retain_snapshots(&[2, 3]);
        assert!(c.get(1, &key(Task::WordCount, None)).is_none());
        assert!(c.get(2, &key(Task::WordCount, None)).is_some());
        assert!(c.get(3, &key(Task::WordCount, None)).is_some());
    }

    #[test]
    fn eviction_spans_snapshot_lanes_and_len_tracks_residency() {
        let mut c = ResultCache::new(2);
        c.insert(1, key(Task::WordCount, None), out("a", 1));
        c.insert(2, key(Task::WordCount, None), out("b", 2));
        c.insert(3, key(Task::WordCount, None), out("c", 3)); // evicts snapshot 1's
        assert_eq!(c.len(), 2);
        assert!(c.get(1, &key(Task::WordCount, None)).is_none());
        assert!(c.get(2, &key(Task::WordCount, None)).is_some());
        assert!(c.get(3, &key(Task::WordCount, None)).is_some());
        c.retain_snapshots(&[3]);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ResultCache::new(0);
        c.insert(1, key(Task::WordCount, None), out("a", 1));
        assert!(c.is_empty());
        assert!(c.get(1, &key(Task::WordCount, None)).is_none());
    }
}
