//! Deterministic multi-tenant serve daemon.
//!
//! The daemon is a discrete-event loop over *virtual* time, the same clock
//! the simulated device charges. Arrivals are admitted (or bounced with a
//! typed [`ServeError`]), queue up, and dispatch in batches; each batch's
//! service time is the device's virtual-ns delta around one
//! [`ServeSession::run_queries`] call on the batch's deduplicated cache-miss
//! set. Because admission, batching, dedup, and cache lookups are all pure
//! functions of the arrival trace, an identical trace replays to
//! bit-identical completions regardless of worker-thread count.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

use ntadoc::engine::ServeSession;
use ntadoc::{Query, QueryResponse, RunReport, Snapshot, TenantId};
use ntadoc_pmem::obs::{
    labeled, METRIC_ADMISSION_REJECTED, METRIC_BATCHES, METRIC_CACHE_HITS, METRIC_CACHE_HIT_RATE,
    METRIC_CACHE_MISSES, METRIC_QUEUE_DEPTH_PEAK,
};

use crate::{DaemonConfig, ResultCache, ServeError, TraceEvent};

/// One admitted-but-not-yet-dispatched query.
#[derive(Debug)]
struct Pending {
    arrival_ns: u64,
    query: Query,
}

/// A query that ran to completion, with its virtual-time accounting.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The query as submitted.
    pub query: Query,
    /// Virtual time the query arrived at the daemon.
    pub arrival_ns: u64,
    /// Virtual time its batch began service.
    pub start_ns: u64,
    /// Virtual time its batch finished (shared by the whole batch).
    pub done_ns: u64,
    /// The typed response (output, cache-hit flag, snapshot version).
    pub response: QueryResponse,
}

impl Completion {
    /// Queueing + service latency in virtual nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.done_ns - self.arrival_ns
    }
}

/// A query bounced at admission. Rejections are returned to the caller,
/// never silently dropped.
#[derive(Debug)]
pub struct Rejection {
    /// Virtual time of the rejected arrival.
    pub at_ns: u64,
    /// Tenant whose query was bounced.
    pub tenant: TenantId,
    /// Why ([`ServeError::QuotaExceeded`] or [`ServeError::QueueFull`]).
    pub error: ServeError,
}

/// Everything that happened while replaying a trace.
#[derive(Debug)]
pub struct TraceOutcome {
    /// Completions in dispatch order (batch by batch, arrival order inside).
    pub completions: Vec<Completion>,
    /// Admission rejections in arrival order.
    pub rejections: Vec<Rejection>,
}

/// One snapshot generation inside the daemon: its resident session, the
/// snapshot handle it answers for, the queries admitted under it that
/// have not dispatched yet, and its own device-occupancy horizon (each
/// lane has its own simulated device, so an old lane draining never
/// serializes against new-snapshot batches).
struct Lane {
    serve: ServeSession,
    snapshot: Arc<Snapshot>,
    pending: VecDeque<Pending>,
    /// Virtual time this lane's device frees up after its last batch.
    busy_until: u64,
}

impl Lane {
    fn new(serve: ServeSession) -> Self {
        let snapshot = serve.snapshot().clone();
        Lane { serve, snapshot, pending: VecDeque::new(), busy_until: 0 }
    }

    fn fingerprint(&self) -> u64 {
        self.snapshot.fingerprint()
    }

    /// Virtual time the oldest pending query's batch window expires.
    fn deadline(&self, window_ns: u64) -> Option<u64> {
        self.pending.front().map(|p| p.arrival_ns.saturating_add(window_ns))
    }
}

/// Which lane a dispatch targets. The draining lane always wins deadline
/// ties: its work was admitted first.
#[derive(Clone, Copy, PartialEq, Eq)]
enum LaneSel {
    Draining,
    Current,
}

/// Multi-tenant query daemon over one resident [`ServeSession`].
///
/// See the [crate docs](crate) for the role split between this type, the
/// [`ResultCache`], and the engine's `run_queries`.
///
/// [`QueryDaemon::install`] rotates in a new snapshot without stalling:
/// queries admitted under the old snapshot move to a *drain lane* that
/// keeps dispatching against the old session (and old pool) on its own
/// deadlines, interleaved with new-snapshot admissions. The cache keeps
/// both generations' entries until the drain lane empties, then sweeps
/// exactly the superseded ones.
pub struct QueryDaemon {
    current: Lane,
    /// The previous snapshot generation, while its admitted work drains.
    /// At most one: a second `install` flushes this lane first.
    draining: Option<Lane>,
    cfg: DaemonConfig,
    cache: ResultCache,
    /// Min-heap of `(done_ns, tenant)` quota releases not yet applied.
    releases: BinaryHeap<Reverse<(u64, u32)>>,
    /// Admitted-but-unfinished queries per tenant.
    tenant_load: HashMap<u32, usize>,
    /// Latest arrival timestamp seen (the daemon's notion of "now").
    clock_ns: u64,
    batches: u64,
    queue_peak: usize,
    rejected: u64,
}

impl QueryDaemon {
    /// Wrap a resident serve session with the given tuning knobs.
    pub fn new(serve: ServeSession, cfg: DaemonConfig) -> Self {
        let cache = ResultCache::new(cfg.cache_capacity);
        QueryDaemon {
            current: Lane::new(serve),
            draining: None,
            cfg,
            cache,
            releases: BinaryHeap::new(),
            tenant_load: HashMap::new(),
            clock_ns: 0,
            batches: 0,
            queue_peak: 0,
            rejected: 0,
        }
    }

    /// Grammar snapshot version new admissions are keyed under.
    pub fn snapshot_version(&self) -> u64 {
        self.current.fingerprint()
    }

    /// Snapshot handle new admissions answer for.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.current.snapshot
    }

    /// The current serve session (device stats, obs, report plumbing).
    pub fn serve_session(&self) -> &ServeSession {
        &self.current.serve
    }

    /// The superseded serve session while its admitted work drains.
    pub fn draining_session(&self) -> Option<&ServeSession> {
        self.draining.as_ref().map(|l| &l.serve)
    }

    /// Queries admitted but not yet dispatched, across both lanes.
    pub fn queue_depth(&self) -> usize {
        self.current.pending.len() + self.draining.as_ref().map_or(0, |l| l.pending.len())
    }

    /// Old-snapshot queries still waiting to dispatch.
    pub fn draining_depth(&self) -> usize {
        self.draining.as_ref().map_or(0, |l| l.pending.len())
    }

    /// Lifetime `(hits, misses)` of the result cache.
    pub fn cache_counters(&self) -> (u64, u64) {
        self.cache.counters()
    }

    /// Fraction of lookups answered from cache.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Batches dispatched so far.
    pub fn batches_dispatched(&self) -> u64 {
        self.batches
    }

    /// Swap in a session over a new (e.g. appended or re-compressed)
    /// corpus snapshot, without stalling in-flight work.
    ///
    /// Queries already admitted stay pinned to the old snapshot: the old
    /// lane moves to *draining* and keeps dispatching against its own
    /// session and device on its own batch deadlines, concurrently with
    /// new-snapshot admissions. The cache retains both generations until
    /// the drain lane empties, at which point exactly the superseded
    /// entries are swept.
    ///
    /// At most one drain generation runs at a time: if a previous drain
    /// lane still holds work, it is flushed to completion first and those
    /// completions are returned.
    pub fn install(&mut self, serve: ServeSession) -> Result<Vec<Completion>, ServeError> {
        let mut flushed = Vec::new();
        while self.draining.is_some() {
            let (deadline, sel) = self.due_deadline().expect("draining lane has a deadline");
            debug_assert!(sel == LaneSel::Draining, "drain deadlines precede current ones");
            self.dispatch(sel, deadline.min(self.clock_ns), &mut flushed)?;
        }
        let old = std::mem::replace(&mut self.current, Lane::new(serve));
        if old.pending.is_empty() {
            // Nothing pinned to the old snapshot: sweep it immediately.
            self.cache.retain_snapshots(&[self.current.fingerprint()]);
        } else {
            self.cache.retain_snapshots(&[old.fingerprint(), self.current.fingerprint()]);
            self.draining = Some(old);
        }
        Ok(flushed)
    }

    /// Serve one query right now (the interactive/CLI path): admit at the
    /// current virtual time, dispatch immediately as a batch of one —
    /// still consulting and filling the shared result cache.
    pub fn execute(&mut self, query: Query) -> Result<QueryResponse, ServeError> {
        // Interactive callers observe completions in order, so "now" is at
        // least the point where the previous batch finished.
        let at = self.clock_ns.max(self.current.busy_until);
        self.submit(at, query)?;
        let mut done = Vec::new();
        self.flush(&mut done)?;
        Ok(done.pop().expect("flush after a successful submit yields a completion").response)
    }

    /// Replay an arrival trace through the full admission → batch → cache
    /// pipeline. Deterministic: identical traces produce bit-identical
    /// outcomes for any `RAYON_NUM_THREADS` / worker count.
    pub fn run_trace(&mut self, trace: &[TraceEvent]) -> Result<TraceOutcome, ServeError> {
        let mut outcome = self.feed(trace)?;
        self.flush(&mut outcome.completions)?;
        Ok(outcome)
    }

    /// [`run_trace`](Self::run_trace) without the final flush: arrivals
    /// are admitted and due batches dispatch, but whatever is still inside
    /// its batch window stays queued. Lets a caller interleave traces with
    /// [`install`](Self::install) mid-stream and keep the event loop
    /// deterministic.
    pub fn feed(&mut self, trace: &[TraceEvent]) -> Result<TraceOutcome, ServeError> {
        let mut events: Vec<&TraceEvent> = trace.iter().collect();
        events.sort_by_key(|e| e.at_ns); // stable: ties keep trace order
        let mut completions = Vec::new();
        let mut rejections = Vec::new();
        for ev in events {
            // Any batch whose window deadline elapsed before this arrival
            // has already launched in virtual time — in either lane, in
            // deadline order (the drain lane wins ties: admitted first).
            while let Some((deadline, sel)) = self.due_deadline() {
                if deadline <= ev.at_ns {
                    self.dispatch(sel, deadline, &mut completions)?;
                } else {
                    break;
                }
            }
            if let Err(error) = self.submit(ev.at_ns, ev.query.clone()) {
                rejections.push(Rejection { at_ns: ev.at_ns, tenant: ev.query.tenant, error });
                continue;
            }
            if self.current.pending.len() >= self.cfg.max_batch {
                self.dispatch(LaneSel::Current, ev.at_ns, &mut completions)?;
            }
        }
        Ok(TraceOutcome { completions, rejections })
    }

    /// Admit a query arriving at `at_ns`, or bounce it with a typed error.
    /// Arrival times are clamped monotone to the daemon clock. Admissions
    /// always land in the *current* lane — the drain lane accepts no new
    /// work.
    pub fn submit(&mut self, at_ns: u64, query: Query) -> Result<(), ServeError> {
        self.clock_ns = self.clock_ns.max(at_ns);
        self.release_until(self.clock_ns);
        let depth = self.queue_depth();
        let obs = self.current.serve.obs();
        if depth >= self.cfg.queue_limit {
            self.rejected += 1;
            obs.metrics.counter_add(METRIC_ADMISSION_REJECTED, 1);
            return Err(ServeError::QueueFull { depth, limit: self.cfg.queue_limit });
        }
        let in_flight = *self.tenant_load.get(&query.tenant.0).unwrap_or(&0);
        if in_flight >= self.cfg.tenant_quota {
            self.rejected += 1;
            obs.metrics.counter_add(METRIC_ADMISSION_REJECTED, 1);
            obs.metrics.counter_add(&rejected_metric(query.tenant), 1);
            return Err(ServeError::QuotaExceeded {
                tenant: query.tenant,
                in_flight,
                quota: self.cfg.tenant_quota,
            });
        }
        *self.tenant_load.entry(query.tenant.0).or_insert(0) += 1;
        self.current.pending.push_back(Pending { arrival_ns: self.clock_ns, query });
        self.queue_peak = self.queue_peak.max(self.queue_depth());
        Ok(())
    }

    /// Dispatch everything still pending (in `max_batch`-sized batches) and
    /// append the completions. Draining means input has ended: a batch whose
    /// window already expired launches at its deadline, anything else
    /// launches now (the daemon clock) instead of waiting out its window.
    pub fn flush(&mut self, completions: &mut Vec<Completion>) -> Result<(), ServeError> {
        while let Some((deadline, sel)) = self.due_deadline() {
            self.dispatch(sel, deadline.min(self.clock_ns), completions)?;
        }
        Ok(())
    }

    /// Fold daemon metrics (cache, queue, admission) into the current
    /// serve session's observability and produce the combined run report.
    /// Idempotent: daemon totals fold via max/set, not repeated adds.
    pub fn report(&self) -> RunReport {
        let metrics = &self.current.serve.obs().metrics;
        let (hits, misses) = self.cache.counters();
        metrics.counter_max(METRIC_CACHE_HITS, hits);
        metrics.counter_max(METRIC_CACHE_MISSES, misses);
        metrics.gauge_set(METRIC_CACHE_HIT_RATE, self.cache.hit_rate());
        metrics.counter_max(METRIC_BATCHES, self.batches);
        metrics.counter_max(METRIC_ADMISSION_REJECTED, self.rejected);
        metrics.gauge_max(METRIC_QUEUE_DEPTH_PEAK, self.queue_peak as f64);
        self.current.serve.report()
    }

    /// Earliest batch-window expiry across the lanes, with the lane it
    /// belongs to. The drain lane wins ties — its work was admitted first,
    /// which keeps cross-lane dispatch order a pure function of the trace.
    fn due_deadline(&self) -> Option<(u64, LaneSel)> {
        let window = self.cfg.batch_window_ns;
        let drain = self.draining.as_ref().and_then(|l| l.deadline(window));
        let cur = self.current.deadline(window);
        match (drain, cur) {
            (Some(d), Some(c)) if c < d => Some((c, LaneSel::Current)),
            (Some(d), _) => Some((d, LaneSel::Draining)),
            (None, Some(c)) => Some((c, LaneSel::Current)),
            (None, None) => None,
        }
    }

    /// Apply quota releases for batches done at or before `now_ns`.
    fn release_until(&mut self, now_ns: u64) {
        while let Some(Reverse((done, tenant))) = self.releases.peek().copied() {
            if done > now_ns {
                break;
            }
            self.releases.pop();
            if let Some(load) = self.tenant_load.get_mut(&tenant) {
                *load = load.saturating_sub(1);
                if *load == 0 {
                    self.tenant_load.remove(&tenant);
                }
            }
        }
    }

    /// Launch one batch from the selected lane at virtual time `at_ns` (or
    /// when that lane's device frees up, whichever is later): consult the
    /// cache under the lane's snapshot, run the deduplicated miss set as
    /// one `run_queries` call on the lane's session, and charge every query
    /// in the batch the same completion time. When the drain lane runs dry
    /// it is retired and the cache narrows to the current snapshot only.
    fn dispatch(
        &mut self,
        sel: LaneSel,
        at_ns: u64,
        completions: &mut Vec<Completion>,
    ) -> Result<(), ServeError> {
        let lane = match sel {
            LaneSel::Draining => self.draining.as_mut().expect("drain dispatch needs a lane"),
            LaneSel::Current => &mut self.current,
        };
        let n = self.cfg.max_batch.max(1).min(lane.pending.len());
        if n == 0 {
            return Ok(());
        }
        let snapshot = lane.snapshot.clone();
        let fp = snapshot.fingerprint();
        let start_ns = at_ns.max(lane.busy_until);
        let taken: Vec<Pending> = lane.pending.drain(..n).collect();

        // Cache phase: zero device lines touched for hits. Misses group by
        // QueryKey (BTreeMap ⇒ deterministic group order) so identical
        // queries from different tenants share one traversal.
        let mut responses: Vec<Option<QueryResponse>> = (0..n).map(|_| None).collect();
        let mut miss_groups: BTreeMap<ntadoc::QueryKey, Vec<usize>> = BTreeMap::new();
        for (i, p) in taken.iter().enumerate() {
            let key = p.query.key();
            if let Some(out) = self.cache.get(fp, &key) {
                responses[i] = Some(QueryResponse {
                    tenant: p.query.tenant,
                    task: p.query.task,
                    output: out,
                    cache_hit: true,
                    snapshot: snapshot.clone(),
                });
            } else {
                miss_groups.entry(key).or_default().push(i);
            }
        }

        let ns_before = lane.serve.sim_device().stats().virtual_ns;
        if !miss_groups.is_empty() {
            let uniq: Vec<Query> =
                miss_groups.values().map(|idxs| taken[idxs[0]].query.clone()).collect();
            let served = lane.serve.run_queries(&uniq)?;
            for ((key, idxs), resp) in miss_groups.into_iter().zip(served) {
                self.cache.insert(fp, key, resp.output.clone());
                for i in idxs {
                    responses[i] = Some(QueryResponse {
                        tenant: taken[i].query.tenant,
                        task: resp.task,
                        output: resp.output.clone(),
                        cache_hit: false,
                        snapshot: snapshot.clone(),
                    });
                }
            }
        }
        let service_ns = lane.serve.sim_device().stats().virtual_ns - ns_before;
        let done_ns = start_ns + service_ns;
        lane.busy_until = done_ns;
        self.batches += 1;

        for (p, response) in taken.into_iter().zip(responses) {
            let response = response.expect("every batched query got a response");
            lane.serve.obs().metrics.counter_add(&served_metric(p.query.tenant), 1);
            self.releases.push(Reverse((done_ns, p.query.tenant.0)));
            completions.push(Completion {
                arrival_ns: p.arrival_ns,
                start_ns,
                done_ns,
                query: p.query,
                response,
            });
        }

        // The old generation's last pinned batch just left: retire the lane
        // and invalidate exactly the superseded cache entries.
        if sel == LaneSel::Draining && self.draining.as_ref().is_some_and(|l| l.pending.is_empty())
        {
            self.draining = None;
            self.cache.retain_snapshots(&[self.current.fingerprint()]);
        }
        Ok(())
    }
}

/// Per-tenant served-queries counter name, e.g. `serve.tenant:3.served`.
fn served_metric(tenant: TenantId) -> String {
    format!("{}.served", labeled("serve.tenant", tenant))
}

/// Per-tenant rejected-queries counter name, e.g. `serve.tenant:3.rejected`.
fn rejected_metric(tenant: TenantId) -> String {
    format!("{}.rejected", labeled("serve.tenant", tenant))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DaemonConfig, ServeError, TraceSpec};
    use ntadoc::{Engine, EngineConfig, Task};
    use ntadoc_grammar::{compress_corpus, TokenizerConfig};

    fn daemon(cfg: DaemonConfig) -> QueryDaemon {
        let files = vec![
            ("a.txt".to_string(), "to be or not to be that is the question".to_string()),
            ("b.txt".to_string(), "the rest is silence to be sure of it".to_string()),
        ];
        let comp = compress_corpus(&files, &TokenizerConfig::default());
        let engine = Engine::builder(comp).config(EngineConfig::ntadoc()).build().unwrap();
        QueryDaemon::new(engine.serve().unwrap(), cfg)
    }

    #[test]
    fn execute_serves_second_ask_from_cache_without_device_reads() {
        let mut d = daemon(DaemonConfig::default());
        let q = Query::new(TenantId(3), Task::WordCount).top_k(4);
        let cold = d.execute(q.clone()).unwrap();
        assert!(!cold.cache_hit);
        let before = d.serve_session().sim_device().stats();
        let warm = d.execute(q).unwrap();
        let delta = d.serve_session().sim_device().stats().checked_since(&before).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(cold.output(), warm.output(), "hit must be byte-identical");
        assert_eq!(delta.reads, 0, "cache hit touched device lines");
        assert_eq!(delta.line_misses, 0);
        assert_eq!(d.cache_counters(), (1, 1));
    }

    #[test]
    fn quota_rejection_is_typed_and_releases_after_completion() {
        let cfg = DaemonConfig {
            tenant_quota: 2,
            max_batch: 16,
            batch_window_ns: u64::MAX / 4, // nothing dispatches on its own
            ..DaemonConfig::default()
        };
        let mut d = daemon(cfg);
        let t = TenantId(1);
        d.submit(10, Query::new(t, Task::WordCount)).unwrap();
        d.submit(20, Query::new(t, Task::Sort)).unwrap();
        let err = d.submit(30, Query::new(t, Task::InvertedIndex)).unwrap_err();
        match err {
            ServeError::QuotaExceeded { tenant, in_flight, quota } => {
                assert_eq!(tenant, t);
                assert_eq!((in_flight, quota), (2, 2));
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // Another tenant is not affected by tenant 1's quota.
        d.submit(30, Query::new(TenantId(2), Task::WordCount)).unwrap();
        // Once the batch completes, the quota slot frees up.
        let mut done = Vec::new();
        d.flush(&mut done).unwrap();
        assert_eq!(done.len(), 3);
        let after = done.iter().map(|c| c.done_ns).max().unwrap();
        d.submit(after + 1, Query::new(t, Task::InvertedIndex)).unwrap();
    }

    #[test]
    fn queue_full_is_typed() {
        let cfg = DaemonConfig {
            queue_limit: 1,
            tenant_quota: 64,
            batch_window_ns: u64::MAX / 4,
            max_batch: 64,
            ..DaemonConfig::default()
        };
        let mut d = daemon(cfg);
        d.submit(0, Query::new(TenantId(0), Task::WordCount)).unwrap();
        let err = d.submit(1, Query::new(TenantId(1), Task::Sort)).unwrap_err();
        assert!(matches!(err, ServeError::QueueFull { depth: 1, limit: 1 }));
    }

    #[test]
    fn batch_dedups_identical_queries_across_tenants() {
        let cfg = DaemonConfig {
            max_batch: 4,
            cache_capacity: 0, // isolate dedup from caching
            ..DaemonConfig::default()
        };
        let mut d = daemon(cfg);
        for t in 0..4u32 {
            d.submit(t as u64, Query::new(TenantId(t), Task::WordCount).top_k(3)).unwrap();
        }
        let mut done = Vec::new();
        d.flush(&mut done).unwrap();
        assert_eq!(done.len(), 4);
        // One traversal served all four tenants: every response shares the
        // same Arc'd output.
        let first = &done[0].response.output;
        assert!(done.iter().all(|c| std::sync::Arc::ptr_eq(&c.response.output, first)));
        assert_eq!(d.batches_dispatched(), 1);
    }

    #[test]
    fn install_swaps_snapshot_and_invalidates_cache() {
        let mut d = daemon(DaemonConfig::default());
        let q = Query::new(TenantId(0), Task::WordCount);
        let old = d.execute(q.clone()).unwrap();
        assert!(d.execute(q.clone()).unwrap().cache_hit);

        // Re-compress a *different* corpus and install it.
        let files =
            vec![("c.txt".to_string(), "entirely different words live here now".to_string())];
        let comp = compress_corpus(&files, &TokenizerConfig::default());
        let engine = Engine::builder(comp).config(EngineConfig::ntadoc()).build().unwrap();
        let new_snapshot = engine.snapshot_version();
        assert_ne!(old.snapshot.fingerprint(), new_snapshot);
        d.install(engine.serve().unwrap()).unwrap();
        assert_eq!(d.snapshot_version(), new_snapshot);

        let fresh = d.execute(q).unwrap();
        assert!(!fresh.cache_hit, "new snapshot must not serve stale bytes");
        assert_eq!(fresh.snapshot.fingerprint(), new_snapshot);
        assert_ne!(old.output(), fresh.output());
    }

    #[test]
    fn install_with_pending_work_drains_against_old_snapshot() {
        let cfg = DaemonConfig {
            batch_window_ns: u64::MAX / 4, // nothing dispatches on its own
            max_batch: 16,
            ..DaemonConfig::default()
        };
        let mut d = daemon(cfg);
        let old_fp = d.snapshot_version();
        d.submit(10, Query::new(TenantId(0), Task::WordCount)).unwrap();
        d.submit(20, Query::new(TenantId(1), Task::Sort)).unwrap();

        let files =
            vec![("c.txt".to_string(), "entirely different words live here now".to_string())];
        let comp = compress_corpus(&files, &TokenizerConfig::default());
        let engine = Engine::builder(comp).config(EngineConfig::ntadoc()).build().unwrap();
        let flushed = d.install(engine.serve().unwrap()).unwrap();
        assert!(flushed.is_empty(), "install must not flush in-window work");
        assert_eq!(d.draining_depth(), 2, "old-snapshot work stays queued in the drain lane");

        // New admissions land under the new snapshot while the old drains.
        d.submit(30, Query::new(TenantId(2), Task::WordCount)).unwrap();
        let mut done = Vec::new();
        d.flush(&mut done).unwrap();
        assert_eq!(done.len(), 3);
        assert_eq!(done[0].response.snapshot.fingerprint(), old_fp);
        assert_eq!(done[1].response.snapshot.fingerprint(), old_fp);
        assert_eq!(done[2].response.snapshot.fingerprint(), d.snapshot_version());
        assert!(d.draining_session().is_none(), "drain lane retires once empty");
    }

    #[test]
    fn trace_replay_is_deterministic() {
        let trace = TraceSpec { queries: 40, ..TraceSpec::default() }.generate();
        let mut a = daemon(DaemonConfig::default());
        let mut b = daemon(DaemonConfig::default());
        let oa = a.run_trace(&trace).unwrap();
        let ob = b.run_trace(&trace).unwrap();
        assert_eq!(oa.completions.len(), ob.completions.len());
        assert_eq!(oa.rejections.len(), ob.rejections.len());
        for (x, y) in oa.completions.iter().zip(&ob.completions) {
            assert_eq!(x.query, y.query);
            assert_eq!(x.arrival_ns, y.arrival_ns);
            assert_eq!(x.start_ns, y.start_ns);
            assert_eq!(x.done_ns, y.done_ns);
            assert_eq!(x.response, y.response);
        }
    }

    #[test]
    fn report_folds_daemon_metrics_idempotently() {
        let mut d = daemon(DaemonConfig::default());
        let q = Query::new(TenantId(5), Task::WordCount);
        d.execute(q.clone()).unwrap();
        d.execute(q).unwrap();
        let r1 = d.report();
        let r2 = d.report();
        assert_eq!(r1.metric_u64(ntadoc_pmem::obs::METRIC_CACHE_HITS), Some(1));
        assert_eq!(
            r2.metric_u64(ntadoc_pmem::obs::METRIC_CACHE_HITS),
            Some(1),
            "re-reporting must not double-count"
        );
        assert_eq!(r1.metric_u64(ntadoc_pmem::obs::METRIC_BATCHES), Some(2));
        assert!(r1.metric_f64(ntadoc_pmem::obs::METRIC_CACHE_HIT_RATE).unwrap() > 0.0);
    }
}
