//! Multi-tenant query service over a resident [`ntadoc::ServeSession`].
//!
//! The engine crate answers one batch of typed [`ntadoc::Query`]s at a time;
//! this crate turns that into a *daemon*: queries from N tenants arrive over
//! (virtual) time, are admission-controlled per tenant, coalesced into
//! batches on the same grammar snapshot so one DAG traversal amortizes
//! across tenants, and answered from a snapshot-keyed result cache when an
//! identical query already ran — a cache hit touches **zero** device lines.
//!
//! Three layers:
//!
//! * [`ResultCache`] — `(snapshot_version, QueryKey) → Arc<TaskOutput>`
//!   with FIFO eviction. Keyed on the grammar fingerprint, so installing a
//!   re-compressed corpus invalidates every stale entry structurally.
//! * [`QueryDaemon`] — the event loop. [`QueryDaemon::run_trace`] replays an
//!   arrival trace deterministically in virtual time (identical trace ⇒
//!   bit-identical responses and latencies for any worker count);
//!   [`QueryDaemon::execute`] serves one query interactively (the CLI path).
//! * [`TraceSpec`] — seeded open-loop workload generator for benches/tests.
//!
//! The event loop is hand-rolled and synchronous: "async" here means
//! *arrivals interleave in virtual time*, which a discrete-event loop models
//! exactly while keeping the determinism guarantees an OS scheduler (or a
//! work-stealing runtime) would destroy.
//!
//! ```
//! use ntadoc::{Engine, EngineConfig, Query, Task, TenantId};
//! use ntadoc_grammar::{compress_corpus, TokenizerConfig};
//! use ntadoc_serve::{DaemonConfig, QueryDaemon};
//!
//! let files = vec![("a.txt".into(), "to be or not to be".into())];
//! let comp = compress_corpus(&files, &TokenizerConfig::default());
//! let engine = Engine::builder(comp).config(EngineConfig::ntadoc()).build().unwrap();
//! let mut daemon = QueryDaemon::new(engine.serve().unwrap(), DaemonConfig::default());
//!
//! let q = Query::new(TenantId(7), Task::WordCount).top_k(2);
//! let cold = daemon.execute(q.clone()).unwrap();
//! let warm = daemon.execute(q).unwrap();
//! assert!(!cold.cache_hit && warm.cache_hit);
//! assert_eq!(cold.output(), warm.output());
//! ```

mod cache;
mod daemon;
mod trace;

pub use cache::ResultCache;
pub use daemon::{Completion, QueryDaemon, Rejection, TraceOutcome};
pub use trace::{percentile_ns, TraceEvent, TraceSpec};

use ntadoc::{RunReport, TenantId};
use ntadoc_pmem::PmemError;

/// Tuning knobs for a [`QueryDaemon`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Dispatch a batch as soon as this many queries are pending.
    pub max_batch: usize,
    /// Dispatch a partial batch once its oldest waiter has aged this long.
    pub batch_window_ns: u64,
    /// Per-tenant cap on admitted-but-unfinished queries; the cheapest
    /// admission-control policy that still isolates tenants from each other.
    pub tenant_quota: usize,
    /// Global cap on the pending queue; arrivals beyond it bounce with
    /// [`ServeError::QueueFull`] (backpressure, not silent drops).
    pub queue_limit: usize,
    /// Result-cache entries to retain (FIFO eviction); `0` disables caching.
    pub cache_capacity: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            max_batch: 16,
            batch_window_ns: 2_000_000,
            tenant_quota: 8,
            queue_limit: 1024,
            cache_capacity: 256,
        }
    }
}

impl DaemonConfig {
    /// Comparator configuration: every query dispatches alone and nothing is
    /// cached. Used by `serve_load` to measure what batching saves.
    pub fn unbatched() -> Self {
        DaemonConfig { max_batch: 1, cache_capacity: 0, ..DaemonConfig::default() }
    }
}

/// Typed admission/service failures. Rejections carry enough context for a
/// tenant to tell *why* it was bounced and what limit it hit.
#[derive(Debug)]
pub enum ServeError {
    /// The tenant already has `in_flight` admitted-but-unfinished queries.
    QuotaExceeded { tenant: TenantId, in_flight: usize, quota: usize },
    /// The shared pending queue is at capacity; retry after completions.
    QueueFull { depth: usize, limit: usize },
    /// The underlying engine failed while serving a batch.
    Engine(PmemError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QuotaExceeded { tenant, in_flight, quota } => {
                write!(f, "tenant {tenant} quota exceeded: {in_flight} in flight, quota {quota}")
            }
            ServeError::QueueFull { depth, limit } => {
                write!(f, "pending queue full: depth {depth}, limit {limit}")
            }
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PmemError> for ServeError {
    fn from(e: PmemError) -> Self {
        ServeError::Engine(e)
    }
}

/// Sum of per-shard device-line reads recorded in a [`RunReport`]'s
/// `contention.shardNN.reads` counters. The serve-path figure of merit:
/// batched serving must touch fewer lines than serving the same trace
/// query-by-query, and a cache hit must add zero.
pub fn shard_reads_total(report: &RunReport) -> u64 {
    report
        .metrics
        .iter()
        .filter(|(name, _)| name.starts_with("contention.shard") && name.ends_with(".reads"))
        .filter_map(|(_, v)| match v {
            ntadoc_pmem::obs::MetricValue::Counter(n) => Some(*n),
            _ => None,
        })
        .sum()
}
