//! Seeded open-loop arrival traces for the serve daemon.
//!
//! The generator is the *only* place randomness enters the serve stack, and
//! it is fully seeded: the same [`TraceSpec`] always yields the same trace,
//! which the daemon then replays deterministically in virtual time.

use ntadoc::{Query, Task, TenantId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One arrival: a typed query hitting the daemon at a virtual timestamp.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Virtual arrival time in nanoseconds.
    pub at_ns: u64,
    /// The query as the tenant submitted it.
    pub query: Query,
}

/// Open-loop workload description. Arrivals do not wait for completions —
/// gaps are drawn independently of service, the standard way to expose
/// queueing behaviour under load.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Number of distinct tenants (round-robin-free: drawn uniformly).
    pub tenants: u32,
    /// Total arrivals to generate.
    pub queries: usize,
    /// Mean inter-arrival gap; gaps are uniform on `[0, 2 * mean]`.
    pub mean_gap_ns: u64,
    /// Percent (0–100) of arrivals drawn from the small hot query set —
    /// higher values mean more cache hits and more intra-batch dedup.
    pub hot_percent: u32,
    /// RNG seed; same seed ⇒ byte-identical trace.
    pub seed: u64,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec { tenants: 4, queries: 64, mean_gap_ns: 500_000, hot_percent: 70, seed: 0x5eed }
    }
}

impl TraceSpec {
    /// Generate the arrival trace (sorted by `at_ns` by construction).
    pub fn generate(&self) -> Vec<TraceEvent> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Hot set: the queries tenants keep re-asking. Restricted to the
        // servable read-only tasks.
        let hot: Vec<(Task, Option<usize>)> = vec![
            (Task::WordCount, Some(5)),
            (Task::WordCount, None),
            (Task::Sort, Some(10)),
            (Task::InvertedIndex, None),
        ];
        let cold: Vec<Task> =
            vec![Task::WordCount, Task::Sort, Task::TermVector, Task::InvertedIndex];
        let tenant_max = self.tenants.saturating_sub(1);
        let mut at_ns: u64 = 0;
        let mut events = Vec::with_capacity(self.queries);
        for _ in 0..self.queries {
            at_ns = at_ns.saturating_add(rng.gen_range(0..=self.mean_gap_ns.saturating_mul(2)));
            let tenant = TenantId(rng.gen_range(0..=tenant_max));
            let query = if rng.gen_range(1..=100) <= self.hot_percent {
                let (task, top_k) = hot[rng.gen_range(0..=hot.len() - 1)];
                let q = Query::new(tenant, task);
                match top_k {
                    Some(k) => q.top_k(k),
                    None => q,
                }
            } else {
                // Cold queries vary top-k so most miss the cache.
                let task = cold[rng.gen_range(0..=cold.len() - 1)];
                Query::new(tenant, task).top_k(rng.gen_range(1..=64))
            };
            events.push(TraceEvent { at_ns, query });
        }
        events
    }
}

/// Nearest-rank percentile over latency samples; `p` in `[0, 100]`.
/// Sorts a copy — callers keep their completion ordering intact.
pub fn percentile_ns(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trace() {
        let spec = TraceSpec::default();
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_ns, y.at_ns);
            assert_eq!(x.query, y.query);
        }
        // Sorted by construction.
        assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn different_seed_different_trace() {
        let a = TraceSpec::default().generate();
        let b = TraceSpec { seed: 0xdead_beef, ..TraceSpec::default() }.generate();
        assert!(
            a.iter().zip(&b).any(|(x, y)| x.at_ns != y.at_ns || x.query != y.query),
            "seeds should steer the trace"
        );
    }

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&s, 50.0), 50);
        assert_eq!(percentile_ns(&s, 99.0), 99);
        assert_eq!(percentile_ns(&s, 100.0), 100);
        assert_eq!(percentile_ns(&[], 50.0), 0);
        assert_eq!(percentile_ns(&[7], 99.0), 7);
    }
}
