//! Embedded-system scenario (paper §III-C, §IV-E): analytics on NVM must
//! survive power failures. This example crashes the device mid-run under
//! both persistence strategies and shows recovery:
//!
//! * **phase-level** — a crash during the traversal phase discards only
//!   that phase; the persisted DAG pool from initialization is intact and
//!   traversal simply re-runs;
//! * **operation-level** — an in-flight PMDK-style transaction is rolled
//!   back from its undo log on recovery.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use ntadoc_repro::{compress_corpus, Engine, EngineConfig, Task, TokenizerConfig};

fn main() {
    let files = vec![
        (
            "sensor-a.log".to_string(),
            "temp ok temp ok temp high fan on temp ok temp ok temp high fan on alarm".repeat(120),
        ),
        (
            "sensor-b.log".to_string(),
            "temp ok humidity ok temp high fan on humidity high vent open temp ok".repeat(120),
        ),
    ];
    let comp = compress_corpus(&files, &TokenizerConfig::default());
    println!(
        "compressed sensor logs: {} words → {} rules",
        comp.grammar.stats().expanded_words,
        comp.grammar.stats().rule_count
    );

    // ---- phase-level persistence: crash during traversal --------------
    let engine =
        Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().expect("engine");
    let mut session = engine.session(Task::WordCount).expect("init phase");
    println!("\n[phase-level] initialization phase complete and persisted");

    // Power failure strikes before the traversal phase finishes.
    session.crash();
    println!("[phase-level] power failure! unflushed traversal state lost");

    // Recovery: the init-phase checkpoint survives; re-run the phase.
    session.recover().expect("recovery");
    let out = session.traverse().expect("re-run traversal after crash");
    let counts = out.as_word_counts().expect("word counts");
    println!(
        "[phase-level] recovered by re-running the traversal phase: `temp` counted {} times",
        counts["temp"]
    );

    // Verify against a never-crashed run.
    let mut fresh =
        Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().expect("engine");
    let clean = fresh.run(Task::WordCount).expect("clean run");
    assert_eq!(clean, out, "post-crash results must equal a clean run");
    println!("[phase-level] results identical to a run that never crashed ✓");

    // ---- operation-level persistence ----------------------------------
    let mut op_engine = Engine::builder(comp.clone())
        .config(EngineConfig::ntadoc_oplevel())
        .build()
        .expect("engine");
    let op_out = op_engine.run(Task::WordCount).expect("operation-level run");
    assert_eq!(op_out, clean);
    let rep = op_engine.last_report.as_ref().unwrap();
    println!(
        "\n[operation-level] same task with per-operation undo logging: {:.3} ms \
         ({} log bytes written — the §IV-E write-amplification trade-off)",
        rep.total_secs() * 1e3,
        rep.stats.log_bytes
    );
}
