//! Distributed-system scenario (paper §III-C): where should compressed
//! text live? Run the same analytics over every storage tier — DRAM, NVM,
//! SSD, HDD — and print the cost ladder the paper's Figures 6 and 7 span.
//!
//! ```text
//! cargo run --release --example device_comparison
//! ```

use ntadoc_repro::{DatasetSpec, DeviceProfile, Engine, EngineConfig, Task};

fn main() {
    let spec = DatasetSpec::a().scaled(0.3);
    let comp = ntadoc_repro::generate_compressed(&spec);
    println!(
        "corpus: {} words, compression {:.1}x\n",
        comp.grammar.stats().expanded_words,
        comp.grammar.compression_ratio()
    );

    println!(
        "{:28} {:>12} {:>12} {:>12} {:>14}",
        "configuration", "init ms", "traversal ms", "total ms", "vs DRAM"
    );
    let mut dram_total = None;
    type EngineMaker<'a> = Box<dyn Fn() -> Engine + 'a>;
    let runs: Vec<(&str, EngineMaker)> = vec![
        (
            "TADOC on DRAM",
            Box::new(|| {
                Engine::builder(comp.clone())
                    .config(EngineConfig::tadoc_dram())
                    .profile(DeviceProfile::dram())
                    .build()
                    .unwrap()
            }),
        ),
        (
            "N-TADOC on NVM",
            Box::new(|| {
                Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap()
            }),
        ),
        (
            "N-TADOC on NVM (op-level)",
            Box::new(|| {
                Engine::builder(comp.clone())
                    .config(EngineConfig::ntadoc_oplevel())
                    .build()
                    .unwrap()
            }),
        ),
        (
            "N-TADOC on SSD",
            Box::new(|| {
                Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).ssd().build().unwrap()
            }),
        ),
        (
            "N-TADOC on HDD",
            Box::new(|| {
                Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).hdd().build().unwrap()
            }),
        ),
    ];
    for (name, make) in runs {
        let mut engine = make();
        engine.run(Task::WordCount).expect("word count");
        let rep = engine.last_report.as_ref().unwrap();
        let total = rep.total_secs() * 1e3;
        let dram = *dram_total.get_or_insert(total);
        println!(
            "{:28} {:>12.3} {:>12.3} {:>12.3} {:>13.2}x",
            name,
            rep.init_secs() * 1e3,
            rep.traversal_secs() * 1e3,
            total,
            total / dram
        );
    }
    println!(
        "\nThe ladder mirrors the paper: NVM sits a small factor above DRAM\n\
         (Figure 6) while SSD and HDD sit well above NVM (Figure 7) — that\n\
         gap is what makes NVM the sweet spot for compressed text analytics."
    );
}
