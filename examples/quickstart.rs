//! Quickstart: compress a small corpus, run word count on the simulated
//! NVM directly over the compressed data, and compare against the
//! uncompressed baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ntadoc_repro::{
    compress_corpus, Engine, EngineConfig, Task, TokenizerConfig, UncompressedEngine,
};

fn main() {
    // 1. A corpus: two "files" with plenty of shared phrasing.
    let files = vec![
        (
            "hamlet.txt".to_string(),
            "to be or not to be that is the question \
             whether tis nobler in the mind to suffer"
                .repeat(200),
        ),
        (
            "macbeth.txt".to_string(),
            "tomorrow and tomorrow and tomorrow creeps in this petty pace \
             to be or not to be is not the question here"
                .repeat(200),
        ),
    ];

    // 2. Compress: tokenize, dictionary-encode, Sequitur → CFG/DAG.
    let comp = compress_corpus(&files, &TokenizerConfig::default());
    let stats = comp.grammar.stats();
    println!(
        "compressed {} words into {} rules / {} symbols ({:.1}x)",
        stats.expanded_words,
        stats.rule_count,
        stats.total_symbols,
        comp.grammar.compression_ratio()
    );

    // 3. Word count directly on the compressed data, on simulated NVM.
    let mut engine =
        Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().expect("engine");
    let out = engine.run(Task::WordCount).expect("word count");
    let counts = out.as_word_counts().expect("word count output");
    let mut top: Vec<_> = counts.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    println!("\ntop words:");
    for (w, c) in top.iter().take(8) {
        println!("  {w:12} {c}");
    }

    // 4. Compare with scanning the uncompressed token stream on NVM.
    let nt = engine.last_report.as_ref().expect("report");
    let mut baseline =
        UncompressedEngine::builder(comp.clone()).config(EngineConfig::ntadoc()).build();
    let base_out = baseline.run(Task::WordCount).expect("baseline");
    assert_eq!(&base_out, &out, "both engines must agree exactly");
    let base = baseline.last_report.as_ref().expect("report");
    println!(
        "\nN-TADOC {:.3} ms (init {:.3} + traversal {:.3}) vs uncompressed {:.3} ms → {:.2}x speedup",
        nt.total_secs() * 1e3,
        nt.init_secs() * 1e3,
        nt.traversal_secs() * 1e3,
        base.total_secs() * 1e3,
        base.total_secs() / nt.total_secs()
    );
}
