//! Random access into compressed data (after the TADOC line's ICDE 2020
//! companion paper): extract any word window of any file in
//! `O(depth + len)` device accesses — no decompression, no scan.
//!
//! ```text
//! cargo run --release --example random_access
//! ```

use ntadoc_repro::{DatasetSpec, DeviceProfile};

fn main() {
    let comp = ntadoc_repro::generate_compressed(&DatasetSpec::c().scaled(0.1));
    let stats = comp.grammar.stats();
    println!(
        "corpus: {} files, {} words compressed into {} rules",
        comp.file_count(),
        stats.expanded_words,
        stats.rule_count
    );

    let accessor = ntadoc::Accessor::new(&comp, DeviceProfile::nvm_optane()).expect("accessor");

    // Pull a few windows from the middle of each document.
    for fid in 0..comp.file_count().min(3) {
        let len = accessor.file_len(fid);
        let offset = len / 2;
        let words = accessor.extract(fid, offset, 12);
        println!("\n{} (words {}..{} of {}):", comp.file_names[fid], offset, offset + 12, len);
        println!("  …{}…", words.join(" "));
    }

    // Cost comparison: a 12-word window vs materialising a whole file.
    let dev = accessor.dev().clone();
    let before = dev.stats().virtual_ns;
    accessor.extract_ids(0, accessor.file_len(0) / 3, 12);
    let window_ns = dev.stats().virtual_ns - before;
    let before = dev.stats().virtual_ns;
    accessor.extract_ids(0, 0, accessor.file_len(0) as usize);
    let full_ns = dev.stats().virtual_ns - before;
    println!(
        "\n12-word window: {window_ns} ns (virtual) vs full-file extraction: {full_ns} ns — \
         {:.0}x cheaper",
        full_ns as f64 / window_ns.max(1) as f64
    );
}
