//! Search-engine scenario (paper §III-C "data mining"): build an inverted
//! index and a ranked inverted index directly over a compressed document
//! collection on NVM, then answer lookup queries — the data is never
//! decompressed.
//!
//! ```text
//! cargo run --release --example search_engine
//! ```

use ntadoc_repro::{DatasetSpec, Engine, EngineConfig, Task};

fn main() {
    // A Wikipedia-like corpus from the dataset generator (scaled down so
    // the example runs in moments).
    let spec = DatasetSpec::c().scaled(0.05);
    let comp = ntadoc_repro::generate_compressed(&spec);
    println!(
        "corpus: {} documents, {} words, {} rules",
        comp.file_count(),
        comp.grammar.stats().expanded_words,
        comp.grammar.stats().rule_count
    );

    let mut engine =
        Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().expect("engine");

    // Inverted index: word → documents.
    let out = engine.run(Task::InvertedIndex).expect("inverted index");
    let index = out.as_inverted_index().expect("index output").clone();
    println!(
        "inverted index over {} terms built in {:.2} ms (virtual)",
        index.len(),
        engine.last_report.as_ref().unwrap().total_secs() * 1e3
    );
    for query in ["the", "water", "school"] {
        match index.get(query) {
            Some(docs) => println!(
                "  `{query}` appears in {} documents: {:?}",
                docs.len(),
                &docs[..docs.len().min(3)]
            ),
            None => println!("  `{query}` not found"),
        }
    }

    // Ranked inverted index: n-gram → documents ranked by frequency.
    let out = engine.run(Task::RankedInvertedIndex).expect("ranked index");
    let ranked = out.as_ranked_inverted_index().expect("ranked output");
    println!(
        "\nranked n-gram index over {} sequences built in {:.2} ms (virtual)",
        ranked.len(),
        engine.last_report.as_ref().unwrap().total_secs() * 1e3
    );
    // Show the most widespread trigram.
    if let Some((gram, docs)) = ranked.iter().max_by_key(|(_, d)| d.len()) {
        println!("  most widespread trigram: {:?}", gram.join(" "));
        for (doc, count) in docs.iter().take(3) {
            println!("    {doc}: {count} occurrences");
        }
    }

    // Term vectors: per-document signature words.
    let out = engine.run(Task::TermVector).expect("term vector");
    let tv = out.as_term_vectors().expect("term vector output");
    println!("\nterm vectors (top-3 words of the first 2 documents):");
    for (doc, words) in tv.iter().take(2) {
        let sig: Vec<String> = words.iter().take(3).map(|(w, c)| format!("{w}:{c}")).collect();
        println!("  {doc}: {}", sig.join("  "));
    }
}
