//! Workspace façade crate: re-exports the N-TADOC reproduction's public
//! surface so the repository-level examples and integration tests have a
//! single import root. Library users should depend on the individual
//! crates (`ntadoc`, `ntadoc-grammar`, `ntadoc-pmem`, …) directly.

pub use ntadoc::{
    ingest_append, ingest_corpus, snapshot_fingerprint, AppendIngest, AppendReport, Engine,
    EngineBuilder, EngineConfig, IdEncoding, IngestOptions, IngestReport, OutputMismatch,
    Persistence, PoolBackend, PoolLayoutConfig, Query, QueryKey, QueryResponse, RetryPolicy,
    RunReport, ServeSession, Session, Snapshot, Task, TaskOutput, TenantId, Traversal,
    UncompressedEngine, UncompressedEngineBuilder, METRIC_DEVICE_PEAK, METRIC_DRAM_PEAK,
    METRIC_HIT_RATE, METRIC_MEDIA_RETRIES, METRIC_SERVE_RATE, METRIC_SERVE_TASKS, REPORT_VERSION,
};
pub use ntadoc_datagen::{generate, generate_compressed, DatasetSpec};
pub use ntadoc_grammar::{
    append_chunk, build_chunk_at, compress_corpus, compress_corpus_chunked, deserialize_compressed,
    merge_chunks, plan_chunks, serialize_compressed, serialized_len, AppendOutcome, ChunkGrammar,
    Compressed, Dictionary, Grammar, MergeOptions, Symbol, TokenizerConfig,
};
pub use ntadoc_pmem::{
    crc64, fsck_pool, panic_is_injected_crash, run_with_crash_at, sweep_ctx, torn_line_survives,
    torn_word_survives, AllocLedger, BufMgrConfig, BufMgrStats, BufferManager, CrashMode,
    CrashPoint, CrashRun, DeviceKind, DeviceMirror, DeviceProfile, FileDevice, FsckReport,
    HostCrashReport, Json, JsonError, MetricRegistry, MetricValue, MetricsSnapshot, MmapDevice,
    Obs, PhasePersist, PmemBackend, PmemError, PmemPool, PoolDevice, PoolHeader, PoolLayout, Prng,
    SimDevice, SpanNode, SweepOutcome, TxLog, TxLogInspection, CRASH_PANIC, POOL_DATA_AT,
    POOL_MAGIC, POOL_VERSION,
};
pub use ntadoc_serve::{
    percentile_ns, shard_reads_total, Completion, DaemonConfig, QueryDaemon, Rejection,
    ResultCache, ServeError, TraceEvent, TraceOutcome, TraceSpec,
};
