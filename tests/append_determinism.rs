//! The streaming-corpus contract: appending files one group at a time
//! through `Engine::append_files` is byte-equivalent — grammar,
//! dictionary, snapshot fingerprint, pool image, virtual time — to a
//! single `EngineBuilder::append_plan` build with the same grouping, for
//! any worker count; sessions opened before an append keep serving the
//! old snapshot; and file pools published under a superseded fingerprint
//! are recreated on open.

use proptest::collection::vec;
use proptest::prelude::*;

use ntadoc_pmem::par;
use ntadoc_repro::{
    compress_corpus, fsck_pool, Engine, EngineBuilder, EngineConfig, PmemError, Query, Task,
    TenantId, TokenizerConfig,
};

/// Arbitrary corpora: 2–6 files of small-alphabet words (some empty), so
/// appends splice empty files, seam repeats, and fresh vocabulary.
fn corpus_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    vec(vec(0u32..18, 0..120), 2..6).prop_map(|files| {
        files
            .into_iter()
            .enumerate()
            .map(|(i, words)| {
                let text = words.iter().map(|w| format!("w{w}")).collect::<Vec<_>>().join(" ");
                (format!("f{i}"), text)
            })
            .collect()
    })
}

/// Deterministically partition `n` files into non-empty groups from a seed.
fn plan_from_seed(n: usize, mut seed: u64) -> Vec<usize> {
    let mut plan = Vec::new();
    let mut left = n;
    while left > 0 {
        let take = 1 + (seed as usize) % left;
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        plan.push(take);
        left -= take;
    }
    plan
}

/// Build by live appends: first group as the base, later groups through
/// `Engine::append_files`.
fn build_by_appends(files: &[(String, String)], plan: &[usize]) -> Engine {
    let mut groups = files.to_vec();
    let mut engine = {
        let rest = groups.split_off(plan[0]);
        let e = EngineBuilder::from_files(groups).config(EngineConfig::ntadoc()).build().unwrap();
        groups = rest;
        e
    };
    for &n in &plan[1..] {
        let rest = groups.split_off(n);
        engine.append_files(groups).unwrap();
        groups = rest;
    }
    engine
}

fn dict_words(e: &Engine) -> Vec<String> {
    e.compressed().dict.iter().map(|(_, w)| w.to_string()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole determinism bar, fails-if-broken: one-at-a-time
    /// appends ≡ a planned chunked build, byte for byte.
    #[test]
    fn appends_one_at_a_time_match_the_planned_build(
        files in corpus_strategy(),
        seed in 0u64..10_000
    ) {
        let plan = plan_from_seed(files.len(), seed);
        let live = build_by_appends(&files, &plan);
        let planned = EngineBuilder::from_files(files.clone())
            .append_plan(plan.clone())
            .config(EngineConfig::ntadoc())
            .build()
            .unwrap();

        prop_assert_eq!(&live.compressed().grammar, &planned.compressed().grammar,
            "grammar diverged for plan {:?}", &plan);
        prop_assert_eq!(dict_words(&live), dict_words(&planned));
        prop_assert_eq!(live.snapshot_version(), planned.snapshot_version());
        prop_assert_eq!(live.ingest_total_ns(), planned.ingest_total_ns());
        prop_assert_eq!(live.append_log().len(), planned.append_log().len());
        for (a, b) in live.append_log().iter().zip(planned.append_log()) {
            prop_assert_eq!(a.virtual_ns, b.virtual_ns);
            prop_assert_eq!(a.new_rules, b.new_rules);
            prop_assert_eq!(a.new_words, b.new_words);
            prop_assert_eq!(a.snapshot.fingerprint(), b.snapshot.fingerprint());
        }

        // The appended corpus expands to exactly the input files, so the
        // incremental path loses nothing a full rebuild would keep.
        let full = compress_corpus(&files, &TokenizerConfig::default());
        prop_assert_eq!(
            live.compressed().grammar.expand_files(),
            full.grammar.expand_files()
        );

        // Pool images are bit-identical: same capacity, same bytes, same
        // published fingerprint, same init cost.
        let sa = live.serve().unwrap();
        let sb = planned.serve().unwrap();
        let (da, db) = (sa.sim_device(), sb.sim_device());
        prop_assert_eq!(da.capacity(), db.capacity());
        prop_assert_eq!(
            da.peek(0, da.capacity() as usize),
            db.peek(0, db.capacity() as usize),
            "pool bytes diverged for plan {:?}", &plan
        );
        prop_assert_eq!(da.stats().virtual_ns, db.stats().virtual_ns);
        prop_assert_eq!(da.published_snapshot(), db.published_snapshot());
    }
}

#[test]
fn append_pipeline_is_identical_for_any_worker_count() {
    let files = vec![
        ("a".to_string(), "the quick brown fox jumps over the lazy dog the end".repeat(30)),
        ("b".to_string(), "pack my box with five dozen liquor jugs the fox".repeat(30)),
        ("c".to_string(), "sphinx of black quartz judge my vow the quick judge".repeat(30)),
        ("d".to_string(), "new words arrive late and must intern cleanly here".repeat(30)),
    ];
    let build = |threads: usize| {
        par::with_threads(threads, || {
            let e = build_by_appends(&files, &[1, 1, 1, 1]);
            let serve = e.serve().unwrap();
            let dev = serve.sim_device();
            (
                e.snapshot_version(),
                e.ingest_total_ns(),
                dev.peek(0, dev.capacity() as usize),
                dev.stats().virtual_ns,
            )
        })
    };
    let (base_fp, base_ns, base_pool, base_init) = build(1);
    for threads in [4, 8] {
        let (fp, ns, pool, init) = build(threads);
        assert_eq!(fp, base_fp, "fingerprint diverged at {threads} threads");
        assert_eq!(ns, base_ns, "append virtual time diverged at {threads} threads");
        assert_eq!(pool, base_pool, "pool bytes diverged at {threads} threads");
        assert_eq!(init, base_init, "init virtual time diverged at {threads} threads");
    }
}

#[test]
fn appended_engines_answer_like_full_rebuilds() {
    let files = vec![
        ("a".to_string(), "one two three one two four five one".repeat(12)),
        ("b".to_string(), "one two three six seven two".repeat(12)),
        ("c".to_string(), "eight nine one seven ten ten".repeat(12)),
    ];
    let mut appended = build_by_appends(&files, &[1, 1, 1]);
    let mut rebuilt = Engine::builder(compress_corpus(&files, &TokenizerConfig::default()))
        .config(EngineConfig::ntadoc())
        .build()
        .unwrap();
    for task in Task::ALL {
        assert_eq!(
            appended.run(task).unwrap(),
            rebuilt.run(task).unwrap(),
            "{task} diverged between append path and full rebuild"
        );
    }
}

#[test]
fn sessions_opened_before_an_append_keep_serving_the_old_snapshot() {
    let files = vec![
        ("a".to_string(), "alpha beta gamma alpha beta".repeat(10)),
        ("b".to_string(), "gamma delta alpha beta gamma".repeat(10)),
    ];
    let mut engine =
        EngineBuilder::from_files(files).config(EngineConfig::ntadoc()).build().unwrap();
    let old_fp = engine.snapshot_version();
    let old_serve = engine.serve().unwrap();
    let q = vec![Query::new(TenantId(0), Task::WordCount)];
    let before_append = old_serve.run_queries(&q).unwrap();

    let report = engine
        .append_files(vec![("c".to_string(), "epsilon zeta alpha epsilon".repeat(10))])
        .unwrap();
    assert_eq!(report.old_fingerprint, old_fp);
    assert_eq!(report.snapshot.fingerprint(), engine.snapshot_version());
    assert_ne!(engine.snapshot_version(), old_fp, "appending must move the fingerprint");

    // The pre-append session is pinned: same snapshot, byte-identical
    // answers, and its reads hit its own (old) pool device.
    assert_eq!(old_serve.snapshot_version(), old_fp);
    let stats_before = old_serve.sim_device().stats();
    let after_append = old_serve.run_queries(&q).unwrap();
    let delta = old_serve.sim_device().stats().checked_since(&stats_before).unwrap();
    assert_eq!(
        before_append[0].output, after_append[0].output,
        "old session must not see the append"
    );
    assert!(delta.reads > 0, "the pinned session reads its own old pool");

    // A fresh session serves the appended corpus under the new snapshot.
    let new_serve = engine.serve().unwrap();
    assert_eq!(new_serve.snapshot_version(), engine.snapshot_version());
    let fresh = new_serve.run_queries(&q).unwrap();
    assert_ne!(before_append[0].output, fresh[0].output, "the new words must be visible");
    assert!(fresh[0].output.as_word_counts().unwrap().contains_key("epsilon"));
}

#[test]
fn stale_published_pools_are_recreated_on_open() {
    let pool =
        std::env::temp_dir().join(format!("ntadoc-append-stale-{}.ntdp", std::process::id()));
    let _ = std::fs::remove_file(&pool);
    let files = vec![
        ("a".to_string(), "one two three one two".repeat(10)),
        ("b".to_string(), "three four one five".repeat(10)),
    ];
    let mut engine =
        EngineBuilder::from_files(files).config(EngineConfig::ntadoc()).build().unwrap();
    let old_fp = engine.snapshot_version();
    {
        let mut s = engine.open_pool(&pool, Task::WordCount).unwrap();
        s.traverse().unwrap();
    }
    assert_eq!(
        fsck_pool(&pool).unwrap().header.snapshot,
        old_fp,
        "a sealed pool publishes its snapshot fingerprint in the header"
    );

    engine.append_files(vec![("c".to_string(), "six seven one six".repeat(10))]).unwrap();
    let new_fp = engine.snapshot_version();
    assert_ne!(new_fp, old_fp);

    // Reopening under the moved fingerprint must not serve stale bytes:
    // the pool is recreated for the appended corpus.
    let mut s = engine.open_pool(&pool, Task::WordCount).unwrap();
    let out = s.traverse().unwrap();
    assert!(out.as_word_counts().unwrap().contains_key("seven"));
    drop(s);
    assert_eq!(fsck_pool(&pool).unwrap().header.snapshot, new_fp);
    let _ = std::fs::remove_file(&pool);
}

#[test]
fn append_misuse_is_rejected_with_typed_errors() {
    let files = vec![("a".to_string(), "one two three".to_string())];
    let mut engine =
        EngineBuilder::from_files(files.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    assert!(matches!(engine.append_files(Vec::new()), Err(PmemError::Unsupported(_))));

    // A plan over an already-compressed corpus has nothing to replay.
    let comp = compress_corpus(&files, &TokenizerConfig::default());
    assert!(matches!(
        Engine::builder(comp).append_plan(vec![1]).build(),
        Err(PmemError::Unsupported(_))
    ));

    // Plans must be non-empty groups summing to the file count.
    for bad in [vec![], vec![0, 1], vec![2], vec![1, 1]] {
        assert!(
            matches!(
                EngineBuilder::from_files(files.clone()).append_plan(bad.clone()).build(),
                Err(PmemError::Unsupported(_))
            ),
            "plan {bad:?} must be rejected"
        );
    }
}
