//! The paper's qualitative claims as test invariants, checked at test
//! scale (direction, not magnitude — magnitudes live in the bench
//! harnesses and EXPERIMENTS.md).

use ntadoc_repro::{
    DatasetSpec, DeviceProfile, Engine, EngineConfig, Task, Traversal, UncompressedEngine,
};

fn corpus() -> ntadoc_grammar::Compressed {
    ntadoc_repro::generate_compressed(&DatasetSpec::a().scaled(0.15))
}

#[test]
fn claim_s1_nvm_writes_are_reduced_by_compression() {
    // §I: "minimizing NVM write operations and enhancing its durability".
    let comp = corpus();
    for task in [Task::WordCount, Task::SequenceCount] {
        let mut nt = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
        nt.run(task).unwrap();
        let mut base =
            UncompressedEngine::builder(comp.clone()).config(EngineConfig::ntadoc()).build();
        base.run(task).unwrap();
        let nt_wb = nt.last_report.as_ref().unwrap().stats.write_backs;
        let base_wb = base.last_report.as_ref().unwrap().stats.write_backs;
        assert!(
            nt_wb < base_wb,
            "{task}: N-TADOC write-backs {nt_wb} must be below baseline {base_wb}"
        );
    }
}

#[test]
fn claim_s4e_operation_level_costs_more_than_phase_level() {
    // §IV-E: the trade-off exists for every engine.
    let comp = corpus();
    let task = Task::WordCount;
    let mut nt_p = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    nt_p.run(task).unwrap();
    let mut nt_o =
        Engine::builder(comp.clone()).config(EngineConfig::ntadoc_oplevel()).build().unwrap();
    nt_o.run(task).unwrap();
    assert!(
        nt_o.last_report.as_ref().unwrap().total_ns()
            > nt_p.last_report.as_ref().unwrap().total_ns(),
        "operation-level must cost more than phase-level for N-TADOC"
    );

    let mut b_p = UncompressedEngine::builder(comp.clone()).config(EngineConfig::ntadoc()).build();
    b_p.run(task).unwrap();
    let mut b_o =
        UncompressedEngine::builder(comp.clone()).config(EngineConfig::ntadoc_oplevel()).build();
    b_o.run(task).unwrap();
    assert!(
        b_o.last_report.as_ref().unwrap().total_ns() > b_p.last_report.as_ref().unwrap().total_ns(),
        "operation-level must cost more than phase-level for the baseline"
    );
}

#[test]
fn claim_s4e_operation_level_writes_an_undo_log() {
    let comp = corpus();
    let mut op =
        Engine::builder(comp.clone()).config(EngineConfig::ntadoc_oplevel()).build().unwrap();
    op.run(Task::WordCount).unwrap();
    assert!(op.last_report.as_ref().unwrap().stats.log_bytes > 0);
    let mut ph = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    ph.run(Task::WordCount).unwrap();
    assert_eq!(ph.last_report.as_ref().unwrap().stats.log_bytes, 0);
}

#[test]
fn claim_s6e_topdown_degrades_with_file_count() {
    // §VI-E: the top-down/bottom-up traversal gap grows with file count.
    let ratios: Vec<f64> = [0.05, 0.2]
        .iter()
        .map(|&scale| {
            let comp = ntadoc_repro::generate_compressed(&DatasetSpec::b().scaled(scale));
            let mut td_cfg = EngineConfig::ntadoc();
            td_cfg.traversal = Traversal::TopDown;
            let mut bu_cfg = EngineConfig::ntadoc();
            bu_cfg.traversal = Traversal::BottomUp;
            let mut td = Engine::builder(comp.clone()).config(td_cfg).build().unwrap();
            td.run(Task::TermVector).unwrap();
            let mut bu = Engine::builder(comp.clone()).config(bu_cfg).build().unwrap();
            bu.run(Task::TermVector).unwrap();
            td.last_report.as_ref().unwrap().traversal_ns() as f64
                / bu.last_report.as_ref().unwrap().traversal_ns() as f64
        })
        .collect();
    assert!(ratios[1] > ratios[0], "ratio must grow with file count: {ratios:?}");
}

#[test]
fn claim_s3b_naive_port_is_much_slower_than_ntadoc() {
    // §III-B / §VI-F: the allocator-swap port pays heavily on NVM.
    let comp = corpus();
    let mut nt = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    nt.run(Task::WordCount).unwrap();
    let mut naive = Engine::builder(comp.clone()).config(EngineConfig::naive()).build().unwrap();
    naive.run(Task::WordCount).unwrap();
    let ratio = naive.last_report.as_ref().unwrap().total_ns() as f64
        / nt.last_report.as_ref().unwrap().total_ns() as f64;
    assert!(ratio > 2.0, "naive/N-TADOC ratio {ratio:.2} should exceed 2x");
}

#[test]
fn claim_table1_shape_holds_for_generated_datasets() {
    let stats: Vec<_> = DatasetSpec::all()
        .into_iter()
        .map(|s| {
            let name = s.name;
            let comp = ntadoc_repro::generate_compressed(&s.scaled(0.05));
            (name, comp.file_count(), comp.grammar.stats())
        })
        .collect();
    let by_name = |n: &str| stats.iter().find(|(name, ..)| *name == n).unwrap();
    // File-count ordering: B has by far the most files; A exactly one.
    assert_eq!(by_name("A").1, 1);
    assert!(by_name("B").1 > 10 * by_name("D").1.min(by_name("C").1));
    // Vocabulary grows from A to D.
    assert!(by_name("D").2.vocabulary > by_name("A").2.vocabulary);
    // Everything actually compresses.
    for (name, _, s) in &stats {
        assert!(
            (s.expanded_words as f64) / (s.total_symbols as f64) > 1.5,
            "{name} compresses poorly"
        );
    }
}

#[test]
fn claim_nvm_sits_between_dram_and_block_devices() {
    // The premise of the whole paper (§II): NVM's cost ladder position.
    let comp = corpus();
    let task = Task::Sort;
    let mut dram = Engine::builder(comp.clone())
        .config(EngineConfig::tadoc_dram())
        .profile(DeviceProfile::dram())
        .build()
        .unwrap();
    dram.run(task).unwrap();
    let mut nvm = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    nvm.run(task).unwrap();
    let mut ssd =
        Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).ssd().build().unwrap();
    ssd.run(task).unwrap();
    let t = |e: &Engine| e.last_report.as_ref().unwrap().total_ns();
    assert!(t(&dram) < t(&nvm));
    assert!(t(&nvm) < t(&ssd));
}

#[test]
fn claim_compressed_image_is_much_smaller_than_raw() {
    let comp = corpus();
    let image = ntadoc_repro::serialize_compressed(&comp).unwrap().len() as u64;
    let raw = Engine::uncompressed_bytes(&comp);
    assert!(image * 2 < raw, "compressed image {image} should be well below raw {raw}");
}
