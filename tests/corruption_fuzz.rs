//! Corruption fuzzing: arbitrary bytes thrown at every recovery entry
//! point must produce a clean error (or a clean no-op), never a panic and
//! never an out-of-bounds rollback.
//!
//! These are seeded-PRNG fuzz loops rather than proptest cases so that
//! failures replay exactly; `tests/proptests.rs` carries the
//! shrinking-enabled variants of the same properties.

use std::sync::Arc;

use ntadoc_repro::{
    compress_corpus, deserialize_compressed, serialize_compressed, DeviceProfile, Engine,
    EngineConfig, PmemError, Prng, SimDevice, Task, TokenizerConfig, TxLog,
};

const LOG_AT: u64 = 4096;
const LOG_CAP: usize = 4096;

fn small_corpus() -> ntadoc_grammar::Compressed {
    let files = vec![
        ("a".to_string(), "lorem ipsum dolor sit amet lorem ipsum".repeat(10)),
        ("b".to_string(), "dolor sit amet consectetur".repeat(10)),
    ];
    compress_corpus(&files, &TokenizerConfig::default())
}

/// Fill `[LOG_AT, LOG_AT + LOG_CAP)` with seeded garbage.
fn scribble_log(dev: &SimDevice, rng: &mut Prng) {
    let mut garbage = vec![0u8; LOG_CAP];
    for chunk in garbage.chunks_mut(8) {
        let word = rng.next_u64().to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&word[..n]);
    }
    dev.write_bytes(LOG_AT, &garbage);
}

#[test]
fn garbage_in_the_log_region_never_panics_recovery() {
    for seed in 0..64u64 {
        let mut rng = Prng::new(seed);
        let dev = Arc::new(SimDevice::new(DeviceProfile::nvm_optane(), 1 << 16));
        scribble_log(&dev, &mut rng);
        let mut log = TxLog::new(dev.clone(), LOG_AT, LOG_CAP);
        // Recovery over garbage must be a clean verdict: either "nothing
        // to do" / rolled-back, or a typed corruption error.
        match log.recover() {
            Ok(_) => {}
            Err(PmemError::CorruptImage(_)) | Err(PmemError::MediaError { .. }) => {}
            Err(e) => panic!("seed {seed}: unexpected error class {e}"),
        }
        // After recovery (whatever the verdict) the log must be usable.
        log.begin().unwrap();
        log.log_range(0, 64).unwrap();
        log.commit().unwrap();
    }
}

#[test]
fn garbage_after_a_real_entry_truncates_not_corrupts() {
    // A valid sealed entry followed by garbage models a crash mid-append:
    // recovery must roll back the valid prefix and stop at the garbage.
    for seed in 0..32u64 {
        let mut rng = Prng::new(seed.wrapping_mul(0x9E37_79B9));
        let dev = Arc::new(SimDevice::new(DeviceProfile::nvm_optane(), 1 << 16));
        dev.write_u64(128, 0xAAAA_BBBB_CCCC_DDDD);
        dev.persist(128, 8);

        let mut log = TxLog::new(dev.clone(), LOG_AT, LOG_CAP);
        log.begin().unwrap();
        log.log_range(128, 8).unwrap();
        // Mutate the data the entry covers, then scribble over the tail of
        // the log region (everything past the first entry) and "crash".
        dev.write_u64(128, 0x1111_2222_3333_4444);
        let tail = LOG_AT + 256;
        let mut garbage = vec![0u8; (LOG_AT + LOG_CAP as u64 - tail) as usize];
        for chunk in garbage.chunks_mut(8) {
            let word = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        dev.write_bytes(tail, &garbage);

        let mut log2 = TxLog::new(dev.clone(), LOG_AT, LOG_CAP);
        let rolled_back = log2.recover().unwrap();
        assert!(rolled_back, "seed {seed}: the valid entry must roll back");
        assert_eq!(dev.read_u64(128), 0xAAAA_BBBB_CCCC_DDDD, "seed {seed}");
    }
}

#[test]
fn mutated_serialized_images_never_panic_deserialization() {
    let comp = small_corpus();
    let clean = serialize_compressed(&comp).unwrap();
    assert!(deserialize_compressed(&clean).is_ok());

    for seed in 0..128u64 {
        let mut rng = Prng::new(seed);
        let mut image = clean.clone();
        // Mutate 1..16 random bytes.
        let flips = 1 + rng.next_below(16) as usize;
        for _ in 0..flips {
            let at = rng.next_below(image.len() as u64) as usize;
            image[at] ^= (rng.next_u64() & 0xFF) as u8 | 1;
        }
        // Must return Ok (mutation missed live bytes — impossible here
        // since everything is covered by the checksum, but harmless) or a
        // typed ImageError; the point is: no panic, no abort.
        let _ = deserialize_compressed(&image);
    }
}

#[test]
fn truncated_and_garbage_images_never_panic_deserialization() {
    let comp = small_corpus();
    let clean = serialize_compressed(&comp).unwrap();
    for cut in 0..clean.len().min(64) {
        let _ = deserialize_compressed(&clean[..cut]);
    }
    for seed in 0..64u64 {
        let mut rng = Prng::new(!seed);
        let len = rng.next_below(512) as usize;
        let mut garbage = vec![0u8; len];
        for b in garbage.iter_mut() {
            *b = (rng.next_u64() & 0xFF) as u8;
        }
        let _ = deserialize_compressed(&garbage);
    }
}

#[test]
fn engine_rejects_corrupt_images_with_a_typed_error() {
    let comp = small_corpus();
    let clean = serialize_compressed(&comp).unwrap();

    // The pristine image round-trips into a working engine.
    let mut engine = Engine::builder_from_image(&clean)
        .and_then(|b| b.config(EngineConfig::ntadoc()).build())
        .unwrap();
    let mut ref_engine =
        Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    assert_eq!(engine.run(Task::WordCount).unwrap(), ref_engine.run(Task::WordCount).unwrap());

    // Any payload bit flip must be caught by the checksum before the
    // engine touches the contents.
    let mut rng = Prng::new(2024);
    for _ in 0..32 {
        let mut image = clean.clone();
        let at = 24 + rng.next_below((image.len() - 24) as u64) as usize;
        image[at] ^= 0x40;
        match Engine::builder_from_image(&image)
            .and_then(|b| b.config(EngineConfig::ntadoc()).build())
        {
            Err(PmemError::CorruptImage(_)) => {}
            Err(e) => panic!("flip at {at}: wrong error class {e}"),
            Ok(_) => panic!("flip at {at}: corrupt image accepted"),
        }
    }
}
