//! Exhaustive crash-point sweep (ALICE-style crash-state enumeration).
//!
//! The recovery tests elsewhere crash at a handful of hand-picked points;
//! this harness enumerates *every* persistence-ordering point a workload
//! issues (each flush and each fence), crashes there under the torn-write
//! model, recovers, and asserts the result converges to the crash-free
//! run — for both §IV-E persistence strategies. A second sweep crashes at
//! random raw-write points, which additionally tears the interrupted
//! store at 8-byte granularity.
//!
//! Seeds default to `[1, 7, 42]` and can be overridden with
//! `NTADOC_SWEEP_SEEDS=3,5,8` (the CI crash-sweep job pins one seed per
//! matrix entry). `NTADOC_SWEEP_STRIDE=n` sweeps every n-th point for a
//! cheaper smoke pass; the default sweeps all of them.
//! `NTADOC_SWEEP_BACKEND=sim|file|mmap|all` selects whether crash states
//! are enumerated on the in-memory simulator, on a real file-backed pool
//! (where the torn bytes land on disk), on a memory-mapped pool, or on
//! all of them (the default). In the default all-backend mode the
//! file/mmap passes sample every 8th point to keep the suite's
//! debug-build runtime close to the sim-only cost; an *explicit*
//! `NTADOC_SWEEP_BACKEND` honors `NTADOC_SWEEP_STRIDE` verbatim, which is
//! how the CI matrix sweeps the durable backends at every persist point.
//!
//! On top of the torn-write model, the host-crash sweep additionally
//! drops non-fsync'd writes (everything since the last `sync_data`/
//! `msync`) before reopening — the power-failure model where the page
//! cache dies with the host. Seal points (header seals,
//! `publish_snapshot`, TxLog entry/commit records) are always fsync'd, so
//! recovery must converge from the surviving bytes alone.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use ntadoc_repro::{
    compress_corpus, panic_is_injected_crash, sweep_ctx, Compressed, Engine, EngineBuilder,
    EngineConfig, PoolBackend, Prng, Session, SweepOutcome, Task, TaskOutput, TokenizerConfig,
};

/// Which storage backend a sweep enumerates crash states on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Backend {
    /// In-memory simulator only.
    Sim,
    /// Real file-backed pool: the injected crash tears bytes on disk.
    File,
    /// Memory-mapped pool file: stores land in the mapping, fences msync.
    Mmap,
}

impl Backend {
    /// The engine-level backend selector for durable variants.
    fn pool_backend(self) -> PoolBackend {
        match self {
            Backend::Sim | Backend::File => PoolBackend::File,
            Backend::Mmap => PoolBackend::Mmap,
        }
    }
}

fn sweep_backends() -> Vec<Backend> {
    match std::env::var("NTADOC_SWEEP_BACKEND").as_deref() {
        Ok("sim") => vec![Backend::Sim],
        Ok("file") => vec![Backend::File],
        Ok("mmap") => vec![Backend::Mmap],
        _ => vec![Backend::Sim, Backend::File, Backend::Mmap],
    }
}

/// Fresh per-process pool path; callers remove it when done.
fn tmp_pool(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ntadoc-sweep-{}-{name}.ntdp", std::process::id()))
}

/// An engine whose `open_pool` attaches the chosen backend.
fn engine_on(comp: &Compressed, cfg: &EngineConfig, backend: Backend) -> Engine {
    Engine::builder(comp.clone())
        .config(cfg.clone())
        .pool_backend(backend.pool_backend())
        .build()
        .unwrap()
}

/// Open a session on the chosen backend (durable pools are recreated).
/// The engine must have been built with the matching
/// [`EngineBuilder::pool_backend`] (see [`engine_on`]).
fn session_on(engine: &Engine, task: Task, backend: Backend, pool: &PathBuf) -> Session {
    match backend {
        Backend::Sim => engine.session(task).unwrap(),
        Backend::File | Backend::Mmap => {
            let _ = std::fs::remove_file(pool);
            engine.open_pool(pool, task).unwrap()
        }
    }
}

fn corpus() -> Compressed {
    let files = vec![
        ("a".to_string(), "one two three one two four five one".repeat(20)),
        ("b".to_string(), "one two three six seven two".repeat(20)),
    ];
    compress_corpus(&files, &TokenizerConfig::default())
}

fn sweep_seeds() -> Vec<u64> {
    let parsed: Vec<u64> = std::env::var("NTADOC_SWEEP_SEEDS")
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_default();
    // An unset or unparseable override must not silently sweep nothing.
    if parsed.is_empty() {
        vec![1, 7, 42]
    } else {
        parsed
    }
}

fn sweep_stride() -> u64 {
    std::env::var("NTADOC_SWEEP_STRIDE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Count the persist points (flushes + fences) one traversal issues.
fn count_traversal_persist_points(comp: &Compressed, cfg: &EngineConfig, task: Task) -> u64 {
    let engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
    let mut session = engine.session(task).unwrap();
    let before = session.sim_device().stats();
    session.traverse().unwrap();
    session.sim_device().stats().since(&before).persist_points()
}

/// Crash at the `point`-th traversal persist point under a torn model,
/// recover, re-traverse, and return the converged output (None if the
/// workload finished before the armed point fired). On the file backend
/// the torn bytes land in the pool file, and the durable on-disk image is
/// asserted byte-identical to the simulator twin before recovery runs.
#[allow(clippy::too_many_arguments)]
fn crash_recover_at_persist_point(
    comp: &Compressed,
    cfg: &EngineConfig,
    task: Task,
    point: u64,
    seed: u64,
    label: &str,
    backend: Backend,
    pool: &PathBuf,
) -> Option<TaskOutput> {
    let ctx = sweep_ctx(label, seed, point);
    let engine = engine_on(comp, cfg, backend);
    let mut session = session_on(&engine, task, backend, pool);
    session.sim_device().trip_after_persists(point);
    let attempt = catch_unwind(AssertUnwindSafe(|| session.traverse()));
    session.sim_device().clear_trip();
    match attempt {
        Ok(Ok(_)) => return None, // finished before the armed point
        Ok(Err(e)) => panic!("{ctx}: unexpected engine error {e}"),
        Err(payload) => {
            assert!(panic_is_injected_crash(&*payload), "{ctx}: a non-injected panic escaped");
        }
    }
    session.crash_torn(seed ^ point);
    if let Some(file) = session.pool_file() {
        file.verify_file_matches_device()
            .unwrap_or_else(|e| panic!("{ctx}: torn on-disk image diverged from the twin: {e}"));
    }
    session.recover().unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
    Some(session.traverse().unwrap_or_else(|e| panic!("{ctx}: re-run failed: {e}")))
}

/// The full sweep for one persistence strategy.
fn sweep_strategy(cfg: &EngineConfig, label: &str) {
    sweep_strategy_over(&corpus(), cfg, label);
}

/// The full sweep for one persistence strategy over a given corpus, on
/// every backend `NTADOC_SWEEP_BACKEND` selects.
fn sweep_strategy_over(comp: &Compressed, cfg: &EngineConfig, label: &str) {
    let comp = comp.clone();
    let task = Task::WordCount;
    let mut clean_engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
    let clean = clean_engine.run(task).unwrap();

    let total = count_traversal_persist_points(&comp, cfg, task);
    assert!(total > 0, "{label}: traversal must issue persist points");
    let stride = sweep_stride();
    let backend_explicit = std::env::var("NTADOC_SWEEP_BACKEND").is_ok();
    for backend in sweep_backends() {
        // Durable sessions replay the whole trace per point against a
        // real file; in the implicit all-backend mode, sample those
        // passes.
        let stride = match backend {
            Backend::File | Backend::Mmap if !backend_explicit => stride * 8,
            _ => stride,
        };
        let pool = tmp_pool(label);
        for seed in sweep_seeds() {
            let mut outcome = SweepOutcome::default();
            let mut point = 0;
            while point < total {
                match crash_recover_at_persist_point(
                    &comp, cfg, task, point, seed, label, backend, &pool,
                ) {
                    Some(out) => {
                        assert_eq!(
                            out,
                            clean,
                            "{}: diverged after recovery on {backend:?}",
                            sweep_ctx(label, seed, point)
                        );
                        outcome.converged += 1;
                    }
                    None => outcome.completed_early += 1,
                }
                point += stride;
            }
            assert!(
                outcome.converged > 0,
                "{label} [{backend:?}]: seed {seed}: no crash actually fired across {total} points"
            );
        }
        let _ = std::fs::remove_file(&pool);
    }
}

#[test]
fn every_persist_point_converges_phase_level() {
    sweep_strategy(&EngineConfig::ntadoc(), "phase-level");
}

#[test]
fn every_persist_point_converges_operation_level() {
    sweep_strategy(&EngineConfig::ntadoc_oplevel(), "operation-level");
}

#[test]
fn every_persist_point_converges_operation_level_with_growable_tables() {
    // presize=false starts every counter at capacity 16, and this corpus
    // has 20 distinct words — past the 7/8 load factor — so the result
    // table must grow *while an operation-level undo-log transaction is
    // open*. The grow is refused mid-transaction (GrowDuringTransaction)
    // and retried as commit → grow → begin, and every persist point that
    // ordering introduces must still converge after a torn-write crash.
    let files = vec![
        (
            "a".to_string(),
            "alpha bravo charlie delta echo foxtrot golf hotel india juliett alpha".repeat(12),
        ),
        (
            "b".to_string(),
            "kilo lima mike november oscar papa quebec romeo sierra tango kilo echo".repeat(12),
        ),
    ];
    let comp = compress_corpus(&files, &TokenizerConfig::default());
    let cfg = EngineConfig { presize: false, ..EngineConfig::ntadoc_oplevel() };
    sweep_strategy_over(&comp, &cfg, "operation-level-growable");
}

#[test]
fn every_persist_point_converges_after_an_append() {
    // An appended grammar carries structure the from-scratch compressor
    // never produces — a spliced root, seam-deduplicated rules, late-
    // interned dictionary entries — and its pools publish the moved
    // snapshot fingerprint. Crash states over such a pool must converge
    // at every persist point, on whichever backend the matrix selects,
    // under both persistence strategies.
    let base = vec![
        ("a".to_string(), "one two three one two four five one".repeat(12)),
        ("b".to_string(), "one two three six seven two".repeat(12)),
    ];
    let mut engine =
        EngineBuilder::from_files(base).config(EngineConfig::ntadoc()).build().unwrap();
    engine
        .append_files(vec![("c".to_string(), "eight nine one seven two eight".repeat(12))])
        .unwrap();
    let comp = (**engine.compressed()).clone();
    sweep_strategy_over(&comp, &EngineConfig::ntadoc(), "append-phase-level");
    sweep_strategy_over(&comp, &EngineConfig::ntadoc_oplevel(), "append-operation-level");
}

#[test]
fn random_mid_write_crash_points_converge_with_torn_stores() {
    // Persist points never interrupt a store; raw write points do, and the
    // torn model then applies an arbitrary subset of the store's 8-byte
    // words. Sample write points across the whole traversal.
    let comp = corpus();
    let task = Task::WordCount;
    for cfg in [EngineConfig::ntadoc(), EngineConfig::ntadoc_oplevel()] {
        let mut clean_engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
        let clean = clean_engine.run(task).unwrap();
        // Count the traversal's write operations once.
        let engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
        let mut session = engine.session(task).unwrap();
        let before = session.sim_device().stats();
        session.traverse().unwrap();
        let writes = session.sim_device().stats().since(&before).writes;
        assert!(writes > 0);

        for seed in sweep_seeds() {
            let mut rng = Prng::new(seed);
            let mut fired = 0u32;
            for _ in 0..40 {
                let trip = rng.next_below(writes);
                let engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
                let mut session = engine.session(task).unwrap();
                session.sim_device().trip_after_writes(trip);
                let attempt = catch_unwind(AssertUnwindSafe(|| session.traverse()));
                session.sim_device().clear_trip();
                let ctx = sweep_ctx("mid-write", seed, trip);
                match attempt {
                    Ok(Ok(out)) => {
                        assert_eq!(out, clean, "{ctx}: completed run differs");
                        continue;
                    }
                    Ok(Err(e)) => panic!("{ctx}: unexpected engine error {e}"),
                    Err(payload) => assert!(
                        panic_is_injected_crash(&*payload),
                        "{ctx}: a non-injected panic escaped"
                    ),
                }
                fired += 1;
                session.crash_torn(seed.wrapping_add(trip));
                session.recover().unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
                let recovered =
                    session.traverse().unwrap_or_else(|e| panic!("{ctx}: re-run failed: {e}"));
                assert_eq!(recovered, clean, "{ctx}: diverged");
            }
            assert!(fired > 0, "seed {seed}: no mid-write crash fired");
        }
    }
}

#[test]
fn repeated_crashes_at_the_same_point_still_converge() {
    // Recovery must itself be crash-safe: crash at point k, recover,
    // crash at point k again during the re-run (different torn seed),
    // recover again, and still converge. This catches recovery paths
    // that only work from a "clean crash" state.
    let comp = corpus();
    for cfg in [EngineConfig::ntadoc(), EngineConfig::ntadoc_oplevel()] {
        let mut clean_engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
        let clean = clean_engine.run(Task::WordCount).unwrap();
        let total = count_traversal_persist_points(&comp, &cfg, Task::WordCount);
        // A handful of points spread across the stream is enough here; the
        // exhaustive single-crash sweep above covers every point.
        for point in [0, total / 4, total / 2, total - 1] {
            let engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
            let mut session = engine.session(Task::WordCount).unwrap();
            let mut crashes = 0u32;
            for round in 0..2u64 {
                let torn_seed = 0xBAD5EED ^ point ^ (round << 32);
                let ctx = sweep_ctx("repeated-crash", torn_seed, point);
                session.sim_device().trip_after_persists(point);
                let attempt = catch_unwind(AssertUnwindSafe(|| session.traverse()));
                session.sim_device().clear_trip();
                match attempt {
                    Ok(Ok(_)) => break, // finished before the point this round
                    Ok(Err(e)) => panic!("{ctx} round {round}: {e}"),
                    Err(payload) => assert!(
                        panic_is_injected_crash(&*payload),
                        "{ctx} round {round}: a non-injected panic escaped"
                    ),
                }
                crashes += 1;
                session.crash_torn(torn_seed);
                session.recover().unwrap_or_else(|e| panic!("{ctx} round {round}: {e}"));
            }
            assert!(crashes > 0, "point {point}: no crash fired");
            assert_eq!(
                session.traverse().unwrap(),
                clean,
                "point {point}: diverged after {crashes} crash(es)"
            );
        }
    }
}

/// Compare two devices' full durable content byte-for-byte.
fn assert_planes_identical(
    sim: &ntadoc_repro::SimDevice,
    twin: &ntadoc_repro::SimDevice,
    ctx: &str,
) {
    assert_eq!(sim.capacity(), twin.capacity(), "{ctx}: pool capacities differ");
    let cap = sim.capacity();
    let chunk = 1usize << 20;
    let mut at = 0u64;
    while at < cap {
        let len = chunk.min((cap - at) as usize);
        assert_eq!(
            sim.peek(at, len),
            twin.peek(at, len),
            "{ctx}: pool contents diverge in [{at}, {})",
            at + len as u64
        );
        at += len as u64;
    }
}

/// The cross-backend identity check the durable backends are designed
/// around: the same logical trace on the in-memory simulator, on a
/// file-backed pool, and on a memory-mapped pool must crash identically
/// (same trip firing), tear identically (the durable post-crash pools are
/// byte-identical, and the *on-disk* bytes match them), recover to the
/// same output, and charge the same virtual time at every stage. A final
/// reopen from nothing but the torn file must also converge, on both
/// durable backends.
#[test]
fn sim_file_and_mmap_backends_agree_at_every_crash_point() {
    let comp = corpus();
    let task = Task::WordCount;
    for (cfg, label) in
        [(EngineConfig::ntadoc(), "xcheck-phase"), (EngineConfig::ntadoc_oplevel(), "xcheck-op")]
    {
        let mut clean_engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
        let clean = clean_engine.run(task).unwrap();
        let total = count_traversal_persist_points(&comp, &cfg, task);
        assert!(total > 0, "{label}: traversal must issue persist points");
        let pool_file = tmp_pool(&format!("{label}-file"));
        let pool_mmap = tmp_pool(&format!("{label}-mmap"));
        let seed = sweep_seeds()[0];
        // A handful of points spread across the stream; the exhaustive
        // per-backend sweeps above cover every point.
        for point in [0, total / 3, total / 2, total - 1] {
            let ctx = sweep_ctx(label, seed, point);
            let mut sim =
                session_on(&engine_on(&comp, &cfg, Backend::Sim), task, Backend::Sim, &pool_file);
            let mut file =
                session_on(&engine_on(&comp, &cfg, Backend::File), task, Backend::File, &pool_file);
            let mut mmap =
                session_on(&engine_on(&comp, &cfg, Backend::Mmap), task, Backend::Mmap, &pool_mmap);

            let mut fired = [false; 3];
            for (i, s) in [&mut sim, &mut file, &mut mmap].into_iter().enumerate() {
                s.sim_device().trip_after_persists(point);
                let attempt = catch_unwind(AssertUnwindSafe(|| s.traverse()));
                s.sim_device().clear_trip();
                match attempt {
                    Ok(Ok(_)) => {}
                    Ok(Err(e)) => panic!("{ctx}: unexpected engine error {e}"),
                    Err(payload) => {
                        assert!(
                            panic_is_injected_crash(&*payload),
                            "{ctx}: a non-injected panic escaped"
                        );
                        fired[i] = true;
                    }
                }
            }
            assert!(
                fired[0] == fired[1] && fired[1] == fired[2],
                "{ctx}: backends disagree on whether a crash fired ({fired:?})"
            );
            let ns = sim.sim_device().stats().virtual_ns;
            assert_eq!(
                ns,
                file.sim_device().stats().virtual_ns,
                "{ctx}: sim/file virtual clocks diverge before the crash"
            );
            assert_eq!(
                ns,
                mmap.sim_device().stats().virtual_ns,
                "{ctx}: sim/mmap virtual clocks diverge before the crash"
            );
            if !fired[0] {
                continue;
            }

            // Identical torn decisions → byte-identical durable pools,
            // and the real files carry exactly those bytes.
            sim.crash_torn(seed ^ point);
            file.crash_torn(seed ^ point);
            mmap.crash_torn(seed ^ point);
            assert_planes_identical(sim.sim_device(), file.sim_device(), &ctx);
            assert_planes_identical(sim.sim_device(), mmap.sim_device(), &ctx);
            for (s, which) in [(&file, "file"), (&mmap, "mmap")] {
                s.pool_file()
                    .expect("durable session")
                    .verify_file_matches_device()
                    .unwrap_or_else(|e| {
                        panic!("{ctx}: {which} on-disk bytes diverged from the twin: {e}")
                    });
            }

            // Identical recovery outcome and cost.
            let mut outs = Vec::new();
            for (s, which) in [(&mut sim, "sim"), (&mut file, "file"), (&mut mmap, "mmap")] {
                s.recover().unwrap_or_else(|e| panic!("{ctx}: {which} recovery failed: {e}"));
                outs.push(s.traverse().unwrap_or_else(|e| panic!("{ctx}: {which} re-run: {e}")));
                assert_eq!(outs.last().unwrap(), &clean, "{ctx}: {which} recovery diverged");
            }
            let ns = sim.sim_device().stats().virtual_ns;
            assert_eq!(
                ns,
                file.sim_device().stats().virtual_ns,
                "{ctx}: sim/file virtual clocks diverge after recovery"
            );
            assert_eq!(
                ns,
                mmap.sim_device().stats().virtual_ns,
                "{ctx}: sim/mmap virtual clocks diverge after recovery"
            );
            drop(file);
            drop(mmap);

            // Recovery from nothing but the torn on-disk bytes: recreate
            // the crash state, drop the session, reopen, and converge —
            // on both durable backends.
            for (backend, pool) in [(Backend::File, &pool_file), (Backend::Mmap, &pool_mmap)] {
                let engine = engine_on(&comp, &cfg, backend);
                let mut doomed = session_on(&engine, task, backend, pool);
                doomed.sim_device().trip_after_persists(point);
                let attempt = catch_unwind(AssertUnwindSafe(|| doomed.traverse()));
                doomed.sim_device().clear_trip();
                assert!(
                    attempt.is_err(),
                    "{ctx}: crash did not refire on a fresh {backend:?} session"
                );
                doomed.crash_torn(seed ^ point);
                drop(doomed);
                let mut reopened = engine
                    .open_pool(pool, task)
                    .unwrap_or_else(|e| panic!("{ctx}: {backend:?} reopen-recovery failed: {e}"));
                assert_eq!(
                    reopened
                        .traverse()
                        .unwrap_or_else(|e| { panic!("{ctx}: {backend:?} reopened re-run: {e}") }),
                    clean,
                    "{ctx}: reopened {backend:?} pool diverged"
                );
            }
        }
        let _ = std::fs::remove_file(&pool_file);
        let _ = std::fs::remove_file(&pool_mmap);
    }
}

/// Host-crash mode: on top of a torn process crash, every write that was
/// not fsync'd by a seal point is at risk — a seeded coin flip loses or
/// keeps each one, modelling the page cache dying with the host. Reopen
/// from the surviving bytes alone must still converge, under both
/// persistence strategies, on both durable backends. This is the sweep
/// that fails pre-fix when seal points ride on unsynced plain fences.
#[test]
fn host_crash_at_sampled_points_converges_on_both_durable_backends() {
    let comp = corpus();
    let task = Task::WordCount;
    let seed = sweep_seeds()[0];
    for (cfg, label) in [
        (EngineConfig::ntadoc(), "host-crash-phase"),
        (EngineConfig::ntadoc_oplevel(), "host-crash-op"),
    ] {
        let mut clean_engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
        let clean = clean_engine.run(task).unwrap();
        let total = count_traversal_persist_points(&comp, &cfg, task);
        for backend in [Backend::File, Backend::Mmap] {
            let pool = tmp_pool(&format!("{label}-{backend:?}"));
            let mut fired = 0u32;
            for point in [0, total / 3, total / 2, total - 1] {
                let ctx = sweep_ctx(label, seed, point);
                let engine = engine_on(&comp, &cfg, backend);
                let mut session = session_on(&engine, task, backend, &pool);
                session.sim_device().trip_after_persists(point);
                let attempt = catch_unwind(AssertUnwindSafe(|| session.traverse()));
                session.sim_device().clear_trip();
                match attempt {
                    Ok(Ok(_)) => continue,
                    Ok(Err(e)) => panic!("{ctx}: unexpected engine error {e}"),
                    Err(payload) => assert!(
                        panic_is_injected_crash(&*payload),
                        "{ctx}: a non-injected panic escaped"
                    ),
                }
                fired += 1;
                session.crash_torn(seed ^ point);
                // The host dies too: unsynced file ranges revert to their
                // last-synced bytes (seeded coin flip per range).
                let report = session.pool_file().expect("durable session").host_crash(seed ^ point);
                drop(session);
                // The surviving file must still be a recoverable pool…
                let fsck = ntadoc_repro::fsck_pool(&pool)
                    .unwrap_or_else(|e| panic!("{ctx} [{backend:?}]: fsck rejected: {e}"));
                assert!(
                    fsck.recoverable(),
                    "{ctx} [{backend:?}]: host crash (kept {}, lost {}) left an unrecoverable pool",
                    report.kept,
                    report.lost
                );
                // …and reopening from nothing but those bytes converges.
                let engine = engine_on(&comp, &cfg, backend);
                let mut reopened = engine.open_pool(&pool, task).unwrap_or_else(|e| {
                    panic!("{ctx} [{backend:?}]: reopen after host crash failed: {e}")
                });
                assert_eq!(
                    reopened.traverse().unwrap_or_else(|e| {
                        panic!("{ctx} [{backend:?}]: re-run after host crash: {e}")
                    }),
                    clean,
                    "{ctx} [{backend:?}]: diverged after host crash (kept {}, lost {})",
                    report.kept,
                    report.lost
                );
                let _ = std::fs::remove_file(&pool);
            }
            assert!(fired > 0, "{label} [{backend:?}]: no crash fired");
        }
    }
}

/// The acknowledged-durability contract: once a run completes (its
/// `publish_snapshot` seal is the acknowledgment), even a host crash that
/// loses *every* non-fsync'd write must preserve the published snapshot
/// and converge on reopen — zero acknowledged-but-lost seal points.
#[test]
fn acknowledged_runs_survive_a_total_host_crash() {
    let comp = corpus();
    let task = Task::WordCount;
    for (cfg, label) in
        [(EngineConfig::ntadoc(), "ack-phase"), (EngineConfig::ntadoc_oplevel(), "ack-op")]
    {
        let mut clean_engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
        let clean = clean_engine.run(task).unwrap();
        for backend in [Backend::File, Backend::Mmap] {
            let pool = tmp_pool(&format!("{label}-{backend:?}"));
            let _ = std::fs::remove_file(&pool);
            let engine = engine_on(&comp, &cfg, backend);
            let mut session = engine.open_pool(&pool, task).unwrap();
            let out = session.traverse().unwrap();
            assert_eq!(out, clean);
            let published = session.backend().published_snapshot();
            assert_ne!(published, 0, "{label}: a completed run must publish its snapshot");
            // Worst-case host crash: every unsynced write is lost.
            session.pool_file().expect("durable session").host_crash_lose_all();
            drop(session);
            let fsck = ntadoc_repro::fsck_pool(&pool).unwrap_or_else(|e| {
                panic!("{label} [{backend:?}]: fsck after total host crash: {e}")
            });
            assert_eq!(
                fsck.header.snapshot, published,
                "{label} [{backend:?}]: the acknowledged publish was lost by the host crash"
            );
            let engine = engine_on(&comp, &cfg, backend);
            let mut reopened = engine.open_pool(&pool, task).unwrap_or_else(|e| {
                panic!("{label} [{backend:?}]: reopen after total host crash: {e}")
            });
            assert_eq!(
                reopened.traverse().unwrap(),
                clean,
                "{label} [{backend:?}]: acknowledged state diverged after a total host crash"
            );
            let _ = std::fs::remove_file(&pool);
        }
    }
}
