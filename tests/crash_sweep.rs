//! Exhaustive crash-point sweep (ALICE-style crash-state enumeration).
//!
//! The recovery tests elsewhere crash at a handful of hand-picked points;
//! this harness enumerates *every* persistence-ordering point a workload
//! issues (each flush and each fence), crashes there under the torn-write
//! model, recovers, and asserts the result converges to the crash-free
//! run — for both §IV-E persistence strategies. A second sweep crashes at
//! random raw-write points, which additionally tears the interrupted
//! store at 8-byte granularity.
//!
//! Seeds default to `[1, 7, 42]` and can be overridden with
//! `NTADOC_SWEEP_SEEDS=3,5,8` (the CI crash-sweep job pins one seed per
//! matrix entry). `NTADOC_SWEEP_STRIDE=n` sweeps every n-th point for a
//! cheaper smoke pass; the default sweeps all of them.
//! `NTADOC_SWEEP_BACKEND=sim|file|both` selects whether crash states are
//! enumerated on the in-memory simulator, on a real file-backed pool
//! (where the torn bytes land on disk), or both (the default). In the
//! default both-backend mode the file pass samples every 8th point to
//! keep the suite's debug-build runtime close to the sim-only cost; an
//! *explicit* `NTADOC_SWEEP_BACKEND` honors `NTADOC_SWEEP_STRIDE`
//! verbatim, which is how the CI matrix sweeps the file backend at every
//! persist point.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use ntadoc_repro::{
    compress_corpus, panic_is_injected_crash, sweep_ctx, Compressed, Engine, EngineBuilder,
    EngineConfig, Prng, Session, SweepOutcome, Task, TaskOutput, TokenizerConfig,
};

/// Which storage backend a sweep enumerates crash states on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Backend {
    /// In-memory simulator only.
    Sim,
    /// Real file-backed pool: the injected crash tears bytes on disk.
    File,
}

fn sweep_backends() -> Vec<Backend> {
    match std::env::var("NTADOC_SWEEP_BACKEND").as_deref() {
        Ok("sim") => vec![Backend::Sim],
        Ok("file") => vec![Backend::File],
        _ => vec![Backend::Sim, Backend::File],
    }
}

/// Fresh per-process pool path; callers remove it when done.
fn tmp_pool(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ntadoc-sweep-{}-{name}.ntdp", std::process::id()))
}

/// Open a session on the chosen backend (file pools are recreated).
fn session_on(engine: &Engine, task: Task, backend: Backend, pool: &PathBuf) -> Session {
    match backend {
        Backend::Sim => engine.session(task).unwrap(),
        Backend::File => {
            let _ = std::fs::remove_file(pool);
            engine.open_pool(pool, task).unwrap()
        }
    }
}

fn corpus() -> Compressed {
    let files = vec![
        ("a".to_string(), "one two three one two four five one".repeat(20)),
        ("b".to_string(), "one two three six seven two".repeat(20)),
    ];
    compress_corpus(&files, &TokenizerConfig::default())
}

fn sweep_seeds() -> Vec<u64> {
    let parsed: Vec<u64> = std::env::var("NTADOC_SWEEP_SEEDS")
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_default();
    // An unset or unparseable override must not silently sweep nothing.
    if parsed.is_empty() {
        vec![1, 7, 42]
    } else {
        parsed
    }
}

fn sweep_stride() -> u64 {
    std::env::var("NTADOC_SWEEP_STRIDE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Count the persist points (flushes + fences) one traversal issues.
fn count_traversal_persist_points(comp: &Compressed, cfg: &EngineConfig, task: Task) -> u64 {
    let engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
    let mut session = engine.session(task).unwrap();
    let before = session.sim_device().stats();
    session.traverse().unwrap();
    session.sim_device().stats().since(&before).persist_points()
}

/// Crash at the `point`-th traversal persist point under a torn model,
/// recover, re-traverse, and return the converged output (None if the
/// workload finished before the armed point fired). On the file backend
/// the torn bytes land in the pool file, and the durable on-disk image is
/// asserted byte-identical to the simulator twin before recovery runs.
#[allow(clippy::too_many_arguments)]
fn crash_recover_at_persist_point(
    comp: &Compressed,
    cfg: &EngineConfig,
    task: Task,
    point: u64,
    seed: u64,
    label: &str,
    backend: Backend,
    pool: &PathBuf,
) -> Option<TaskOutput> {
    let ctx = sweep_ctx(label, seed, point);
    let engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
    let mut session = session_on(&engine, task, backend, pool);
    session.sim_device().trip_after_persists(point);
    let attempt = catch_unwind(AssertUnwindSafe(|| session.traverse()));
    session.sim_device().clear_trip();
    match attempt {
        Ok(Ok(_)) => return None, // finished before the armed point
        Ok(Err(e)) => panic!("{ctx}: unexpected engine error {e}"),
        Err(payload) => {
            assert!(panic_is_injected_crash(&*payload), "{ctx}: a non-injected panic escaped");
        }
    }
    session.crash_torn(seed ^ point);
    if let Some(file) = session.pool_file() {
        file.verify_file_matches_device()
            .unwrap_or_else(|e| panic!("{ctx}: torn on-disk image diverged from the twin: {e}"));
    }
    session.recover().unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
    Some(session.traverse().unwrap_or_else(|e| panic!("{ctx}: re-run failed: {e}")))
}

/// The full sweep for one persistence strategy.
fn sweep_strategy(cfg: &EngineConfig, label: &str) {
    sweep_strategy_over(&corpus(), cfg, label);
}

/// The full sweep for one persistence strategy over a given corpus, on
/// every backend `NTADOC_SWEEP_BACKEND` selects.
fn sweep_strategy_over(comp: &Compressed, cfg: &EngineConfig, label: &str) {
    let comp = comp.clone();
    let task = Task::WordCount;
    let mut clean_engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
    let clean = clean_engine.run(task).unwrap();

    let total = count_traversal_persist_points(&comp, cfg, task);
    assert!(total > 0, "{label}: traversal must issue persist points");
    let stride = sweep_stride();
    let backend_explicit = std::env::var("NTADOC_SWEEP_BACKEND").is_ok();
    for backend in sweep_backends() {
        // File sessions replay the whole trace per point against a real
        // file; in the implicit both-backend mode, sample that pass.
        let stride = match backend {
            Backend::File if !backend_explicit => stride * 8,
            _ => stride,
        };
        let pool = tmp_pool(label);
        for seed in sweep_seeds() {
            let mut outcome = SweepOutcome::default();
            let mut point = 0;
            while point < total {
                match crash_recover_at_persist_point(
                    &comp, cfg, task, point, seed, label, backend, &pool,
                ) {
                    Some(out) => {
                        assert_eq!(
                            out,
                            clean,
                            "{}: diverged after recovery on {backend:?}",
                            sweep_ctx(label, seed, point)
                        );
                        outcome.converged += 1;
                    }
                    None => outcome.completed_early += 1,
                }
                point += stride;
            }
            assert!(
                outcome.converged > 0,
                "{label} [{backend:?}]: seed {seed}: no crash actually fired across {total} points"
            );
        }
        let _ = std::fs::remove_file(&pool);
    }
}

#[test]
fn every_persist_point_converges_phase_level() {
    sweep_strategy(&EngineConfig::ntadoc(), "phase-level");
}

#[test]
fn every_persist_point_converges_operation_level() {
    sweep_strategy(&EngineConfig::ntadoc_oplevel(), "operation-level");
}

#[test]
fn every_persist_point_converges_operation_level_with_growable_tables() {
    // presize=false starts every counter at capacity 16, and this corpus
    // has 20 distinct words — past the 7/8 load factor — so the result
    // table must grow *while an operation-level undo-log transaction is
    // open*. The grow is refused mid-transaction (GrowDuringTransaction)
    // and retried as commit → grow → begin, and every persist point that
    // ordering introduces must still converge after a torn-write crash.
    let files = vec![
        (
            "a".to_string(),
            "alpha bravo charlie delta echo foxtrot golf hotel india juliett alpha".repeat(12),
        ),
        (
            "b".to_string(),
            "kilo lima mike november oscar papa quebec romeo sierra tango kilo echo".repeat(12),
        ),
    ];
    let comp = compress_corpus(&files, &TokenizerConfig::default());
    let cfg = EngineConfig { presize: false, ..EngineConfig::ntadoc_oplevel() };
    sweep_strategy_over(&comp, &cfg, "operation-level-growable");
}

#[test]
fn every_persist_point_converges_after_an_append() {
    // An appended grammar carries structure the from-scratch compressor
    // never produces — a spliced root, seam-deduplicated rules, late-
    // interned dictionary entries — and its pools publish the moved
    // snapshot fingerprint. Crash states over such a pool must converge
    // at every persist point, on whichever backend the matrix selects,
    // under both persistence strategies.
    let base = vec![
        ("a".to_string(), "one two three one two four five one".repeat(12)),
        ("b".to_string(), "one two three six seven two".repeat(12)),
    ];
    let mut engine =
        EngineBuilder::from_files(base).config(EngineConfig::ntadoc()).build().unwrap();
    engine
        .append_files(vec![("c".to_string(), "eight nine one seven two eight".repeat(12))])
        .unwrap();
    let comp = (**engine.compressed()).clone();
    sweep_strategy_over(&comp, &EngineConfig::ntadoc(), "append-phase-level");
    sweep_strategy_over(&comp, &EngineConfig::ntadoc_oplevel(), "append-operation-level");
}

#[test]
fn random_mid_write_crash_points_converge_with_torn_stores() {
    // Persist points never interrupt a store; raw write points do, and the
    // torn model then applies an arbitrary subset of the store's 8-byte
    // words. Sample write points across the whole traversal.
    let comp = corpus();
    let task = Task::WordCount;
    for cfg in [EngineConfig::ntadoc(), EngineConfig::ntadoc_oplevel()] {
        let mut clean_engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
        let clean = clean_engine.run(task).unwrap();
        // Count the traversal's write operations once.
        let engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
        let mut session = engine.session(task).unwrap();
        let before = session.sim_device().stats();
        session.traverse().unwrap();
        let writes = session.sim_device().stats().since(&before).writes;
        assert!(writes > 0);

        for seed in sweep_seeds() {
            let mut rng = Prng::new(seed);
            let mut fired = 0u32;
            for _ in 0..40 {
                let trip = rng.next_below(writes);
                let engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
                let mut session = engine.session(task).unwrap();
                session.sim_device().trip_after_writes(trip);
                let attempt = catch_unwind(AssertUnwindSafe(|| session.traverse()));
                session.sim_device().clear_trip();
                let ctx = sweep_ctx("mid-write", seed, trip);
                match attempt {
                    Ok(Ok(out)) => {
                        assert_eq!(out, clean, "{ctx}: completed run differs");
                        continue;
                    }
                    Ok(Err(e)) => panic!("{ctx}: unexpected engine error {e}"),
                    Err(payload) => assert!(
                        panic_is_injected_crash(&*payload),
                        "{ctx}: a non-injected panic escaped"
                    ),
                }
                fired += 1;
                session.crash_torn(seed.wrapping_add(trip));
                session.recover().unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
                let recovered =
                    session.traverse().unwrap_or_else(|e| panic!("{ctx}: re-run failed: {e}"));
                assert_eq!(recovered, clean, "{ctx}: diverged");
            }
            assert!(fired > 0, "seed {seed}: no mid-write crash fired");
        }
    }
}

#[test]
fn repeated_crashes_at_the_same_point_still_converge() {
    // Recovery must itself be crash-safe: crash at point k, recover,
    // crash at point k again during the re-run (different torn seed),
    // recover again, and still converge. This catches recovery paths
    // that only work from a "clean crash" state.
    let comp = corpus();
    for cfg in [EngineConfig::ntadoc(), EngineConfig::ntadoc_oplevel()] {
        let mut clean_engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
        let clean = clean_engine.run(Task::WordCount).unwrap();
        let total = count_traversal_persist_points(&comp, &cfg, Task::WordCount);
        // A handful of points spread across the stream is enough here; the
        // exhaustive single-crash sweep above covers every point.
        for point in [0, total / 4, total / 2, total - 1] {
            let engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
            let mut session = engine.session(Task::WordCount).unwrap();
            let mut crashes = 0u32;
            for round in 0..2u64 {
                let torn_seed = 0xBAD5EED ^ point ^ (round << 32);
                let ctx = sweep_ctx("repeated-crash", torn_seed, point);
                session.sim_device().trip_after_persists(point);
                let attempt = catch_unwind(AssertUnwindSafe(|| session.traverse()));
                session.sim_device().clear_trip();
                match attempt {
                    Ok(Ok(_)) => break, // finished before the point this round
                    Ok(Err(e)) => panic!("{ctx} round {round}: {e}"),
                    Err(payload) => assert!(
                        panic_is_injected_crash(&*payload),
                        "{ctx} round {round}: a non-injected panic escaped"
                    ),
                }
                crashes += 1;
                session.crash_torn(torn_seed);
                session.recover().unwrap_or_else(|e| panic!("{ctx} round {round}: {e}"));
            }
            assert!(crashes > 0, "point {point}: no crash fired");
            assert_eq!(
                session.traverse().unwrap(),
                clean,
                "point {point}: diverged after {crashes} crash(es)"
            );
        }
    }
}

/// Compare two devices' full durable content byte-for-byte.
fn assert_planes_identical(
    sim: &ntadoc_repro::SimDevice,
    twin: &ntadoc_repro::SimDevice,
    ctx: &str,
) {
    assert_eq!(sim.capacity(), twin.capacity(), "{ctx}: pool capacities differ");
    let cap = sim.capacity();
    let chunk = 1usize << 20;
    let mut at = 0u64;
    while at < cap {
        let len = chunk.min((cap - at) as usize);
        assert_eq!(
            sim.peek(at, len),
            twin.peek(at, len),
            "{ctx}: pool contents diverge in [{at}, {})",
            at + len as u64
        );
        at += len as u64;
    }
}

/// The cross-backend identity check the file backend is designed around:
/// the same logical trace on the in-memory simulator and on a file-backed
/// pool must crash identically (same trip firing), tear identically (the
/// durable post-crash pools are byte-identical, and the *on-disk* bytes
/// match them), recover to the same output, and charge the same virtual
/// time at every stage. A final reopen from nothing but the torn file
/// must also converge.
#[test]
fn sim_and_file_backends_agree_at_every_crash_point() {
    let comp = corpus();
    let task = Task::WordCount;
    for (cfg, label) in
        [(EngineConfig::ntadoc(), "xcheck-phase"), (EngineConfig::ntadoc_oplevel(), "xcheck-op")]
    {
        let mut clean_engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
        let clean = clean_engine.run(task).unwrap();
        let total = count_traversal_persist_points(&comp, &cfg, task);
        assert!(total > 0, "{label}: traversal must issue persist points");
        let pool = tmp_pool(label);
        let seed = sweep_seeds()[0];
        // A handful of points spread across the stream; the exhaustive
        // per-backend sweeps above cover every point.
        for point in [0, total / 3, total / 2, total - 1] {
            let ctx = sweep_ctx(label, seed, point);
            let engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
            let mut sim = session_on(&engine, task, Backend::Sim, &pool);
            let mut file = session_on(&engine, task, Backend::File, &pool);

            let mut fired = [false; 2];
            for (i, s) in [&mut sim, &mut file].into_iter().enumerate() {
                s.sim_device().trip_after_persists(point);
                let attempt = catch_unwind(AssertUnwindSafe(|| s.traverse()));
                s.sim_device().clear_trip();
                match attempt {
                    Ok(Ok(_)) => {}
                    Ok(Err(e)) => panic!("{ctx}: unexpected engine error {e}"),
                    Err(payload) => {
                        assert!(
                            panic_is_injected_crash(&*payload),
                            "{ctx}: a non-injected panic escaped"
                        );
                        fired[i] = true;
                    }
                }
            }
            assert_eq!(fired[0], fired[1], "{ctx}: backends disagree on whether a crash fired");
            assert_eq!(
                sim.sim_device().stats().virtual_ns,
                file.sim_device().stats().virtual_ns,
                "{ctx}: virtual clocks diverge before the crash"
            );
            if !fired[0] {
                continue;
            }

            // Identical torn decisions → byte-identical durable pools,
            // and the real file carries exactly those bytes.
            sim.crash_torn(seed ^ point);
            file.crash_torn(seed ^ point);
            assert_planes_identical(sim.sim_device(), file.sim_device(), &ctx);
            file.pool_file()
                .expect("file-backed session")
                .verify_file_matches_device()
                .unwrap_or_else(|e| panic!("{ctx}: on-disk bytes diverged from the twin: {e}"));

            // Identical recovery outcome and cost.
            sim.recover().unwrap_or_else(|e| panic!("{ctx}: sim recovery failed: {e}"));
            file.recover().unwrap_or_else(|e| panic!("{ctx}: file recovery failed: {e}"));
            let sim_out = sim.traverse().unwrap_or_else(|e| panic!("{ctx}: sim re-run: {e}"));
            let file_out = file.traverse().unwrap_or_else(|e| panic!("{ctx}: file re-run: {e}"));
            assert_eq!(sim_out, clean, "{ctx}: sim recovery diverged");
            assert_eq!(file_out, clean, "{ctx}: file recovery diverged");
            assert_eq!(
                sim.sim_device().stats().virtual_ns,
                file.sim_device().stats().virtual_ns,
                "{ctx}: virtual clocks diverge after recovery"
            );
            drop(file);

            // Recovery from nothing but the torn on-disk bytes: recreate
            // the crash state, drop the session, reopen, and converge.
            let engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
            let mut doomed = session_on(&engine, task, Backend::File, &pool);
            doomed.sim_device().trip_after_persists(point);
            let attempt = catch_unwind(AssertUnwindSafe(|| doomed.traverse()));
            doomed.sim_device().clear_trip();
            assert!(attempt.is_err(), "{ctx}: crash did not refire on a fresh session");
            doomed.crash_torn(seed ^ point);
            drop(doomed);
            let mut reopened = engine
                .open_pool(&pool, task)
                .unwrap_or_else(|e| panic!("{ctx}: reopen-recovery failed: {e}"));
            assert_eq!(
                reopened.traverse().unwrap_or_else(|e| panic!("{ctx}: reopened re-run: {e}")),
                clean,
                "{ctx}: reopened pool diverged"
            );
        }
        let _ = std::fs::remove_file(&pool);
    }
}
