//! Exhaustive crash-point sweep (ALICE-style crash-state enumeration).
//!
//! The recovery tests elsewhere crash at a handful of hand-picked points;
//! this harness enumerates *every* persistence-ordering point a workload
//! issues (each flush and each fence), crashes there under the torn-write
//! model, recovers, and asserts the result converges to the crash-free
//! run — for both §IV-E persistence strategies. A second sweep crashes at
//! random raw-write points, which additionally tears the interrupted
//! store at 8-byte granularity.
//!
//! Seeds default to `[1, 7, 42]` and can be overridden with
//! `NTADOC_SWEEP_SEEDS=3,5,8` (the CI crash-sweep job pins one seed per
//! matrix entry). `NTADOC_SWEEP_STRIDE=n` sweeps every n-th point for a
//! cheaper smoke pass; the default sweeps all of them.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ntadoc_repro::{
    compress_corpus, panic_is_injected_crash, Compressed, Engine, EngineConfig, Prng, SweepOutcome,
    Task, TaskOutput, TokenizerConfig,
};

fn corpus() -> Compressed {
    let files = vec![
        ("a".to_string(), "one two three one two four five one".repeat(20)),
        ("b".to_string(), "one two three six seven two".repeat(20)),
    ];
    compress_corpus(&files, &TokenizerConfig::default())
}

fn sweep_seeds() -> Vec<u64> {
    let parsed: Vec<u64> = std::env::var("NTADOC_SWEEP_SEEDS")
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_default();
    // An unset or unparseable override must not silently sweep nothing.
    if parsed.is_empty() {
        vec![1, 7, 42]
    } else {
        parsed
    }
}

fn sweep_stride() -> u64 {
    std::env::var("NTADOC_SWEEP_STRIDE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Count the persist points (flushes + fences) one traversal issues.
fn count_traversal_persist_points(comp: &Compressed, cfg: &EngineConfig, task: Task) -> u64 {
    let engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
    let mut session = engine.session(task).unwrap();
    let before = session.device().stats();
    session.traverse().unwrap();
    session.device().stats().since(&before).persist_points()
}

/// Crash at the `point`-th traversal persist point under a torn model,
/// recover, re-traverse, and return the converged output (None if the
/// workload finished before the armed point fired).
fn crash_recover_at_persist_point(
    comp: &Compressed,
    cfg: &EngineConfig,
    task: Task,
    point: u64,
    seed: u64,
) -> Option<TaskOutput> {
    let engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
    let mut session = engine.session(task).unwrap();
    session.device().trip_after_persists(point);
    let attempt = catch_unwind(AssertUnwindSafe(|| session.traverse()));
    session.device().clear_trip();
    match attempt {
        Ok(Ok(_)) => return None, // finished before the armed point
        Ok(Err(e)) => panic!("point {point}: unexpected engine error {e}"),
        Err(payload) => {
            assert!(
                panic_is_injected_crash(&*payload),
                "point {point}: a non-injected panic escaped"
            );
        }
    }
    session.crash_torn(seed ^ point);
    session.recover().unwrap_or_else(|e| panic!("point {point}: recovery failed: {e}"));
    Some(session.traverse().unwrap_or_else(|e| panic!("point {point}: re-run failed: {e}")))
}

/// The full sweep for one persistence strategy.
fn sweep_strategy(cfg: &EngineConfig, label: &str) {
    sweep_strategy_over(&corpus(), cfg, label);
}

/// The full sweep for one persistence strategy over a given corpus.
fn sweep_strategy_over(comp: &Compressed, cfg: &EngineConfig, label: &str) {
    let comp = comp.clone();
    let task = Task::WordCount;
    let mut clean_engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
    let clean = clean_engine.run(task).unwrap();

    let total = count_traversal_persist_points(&comp, cfg, task);
    assert!(total > 0, "{label}: traversal must issue persist points");
    let stride = sweep_stride();
    for seed in sweep_seeds() {
        let mut outcome = SweepOutcome::default();
        let mut point = 0;
        while point < total {
            match crash_recover_at_persist_point(&comp, cfg, task, point, seed) {
                Some(out) => {
                    assert_eq!(
                        out, clean,
                        "{label}: seed {seed} point {point}/{total} diverged after recovery"
                    );
                    outcome.converged += 1;
                }
                None => outcome.completed_early += 1,
            }
            point += stride;
        }
        assert!(
            outcome.converged > 0,
            "{label}: seed {seed}: no crash actually fired across {total} points"
        );
    }
}

#[test]
fn every_persist_point_converges_phase_level() {
    sweep_strategy(&EngineConfig::ntadoc(), "phase-level");
}

#[test]
fn every_persist_point_converges_operation_level() {
    sweep_strategy(&EngineConfig::ntadoc_oplevel(), "operation-level");
}

#[test]
fn every_persist_point_converges_operation_level_with_growable_tables() {
    // presize=false starts every counter at capacity 16, and this corpus
    // has 20 distinct words — past the 7/8 load factor — so the result
    // table must grow *while an operation-level undo-log transaction is
    // open*. The grow is refused mid-transaction (GrowDuringTransaction)
    // and retried as commit → grow → begin, and every persist point that
    // ordering introduces must still converge after a torn-write crash.
    let files = vec![
        (
            "a".to_string(),
            "alpha bravo charlie delta echo foxtrot golf hotel india juliett alpha".repeat(12),
        ),
        (
            "b".to_string(),
            "kilo lima mike november oscar papa quebec romeo sierra tango kilo echo".repeat(12),
        ),
    ];
    let comp = compress_corpus(&files, &TokenizerConfig::default());
    let cfg = EngineConfig { presize: false, ..EngineConfig::ntadoc_oplevel() };
    sweep_strategy_over(&comp, &cfg, "operation-level-growable");
}

#[test]
fn random_mid_write_crash_points_converge_with_torn_stores() {
    // Persist points never interrupt a store; raw write points do, and the
    // torn model then applies an arbitrary subset of the store's 8-byte
    // words. Sample write points across the whole traversal.
    let comp = corpus();
    let task = Task::WordCount;
    for cfg in [EngineConfig::ntadoc(), EngineConfig::ntadoc_oplevel()] {
        let mut clean_engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
        let clean = clean_engine.run(task).unwrap();
        // Count the traversal's write operations once.
        let engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
        let mut session = engine.session(task).unwrap();
        let before = session.device().stats();
        session.traverse().unwrap();
        let writes = session.device().stats().since(&before).writes;
        assert!(writes > 0);

        for seed in sweep_seeds() {
            let mut rng = Prng::new(seed);
            let mut fired = 0u32;
            for _ in 0..40 {
                let trip = rng.next_below(writes);
                let engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
                let mut session = engine.session(task).unwrap();
                session.device().trip_after_writes(trip);
                let attempt = catch_unwind(AssertUnwindSafe(|| session.traverse()));
                session.device().clear_trip();
                match attempt {
                    Ok(Ok(out)) => {
                        assert_eq!(out, clean, "write trip {trip}: completed run differs");
                        continue;
                    }
                    Ok(Err(e)) => panic!("write trip {trip}: unexpected engine error {e}"),
                    Err(payload) => assert!(panic_is_injected_crash(&*payload)),
                }
                fired += 1;
                session.crash_torn(seed.wrapping_add(trip));
                session.recover().unwrap();
                let recovered = session.traverse().unwrap();
                assert_eq!(recovered, clean, "seed {seed} write trip {trip} diverged");
            }
            assert!(fired > 0, "seed {seed}: no mid-write crash fired");
        }
    }
}

#[test]
fn repeated_crashes_at_the_same_point_still_converge() {
    // Recovery must itself be crash-safe: crash at point k, recover,
    // crash at point k again during the re-run (different torn seed),
    // recover again, and still converge. This catches recovery paths
    // that only work from a "clean crash" state.
    let comp = corpus();
    for cfg in [EngineConfig::ntadoc(), EngineConfig::ntadoc_oplevel()] {
        let mut clean_engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
        let clean = clean_engine.run(Task::WordCount).unwrap();
        let total = count_traversal_persist_points(&comp, &cfg, Task::WordCount);
        // A handful of points spread across the stream is enough here; the
        // exhaustive single-crash sweep above covers every point.
        for point in [0, total / 4, total / 2, total - 1] {
            let engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
            let mut session = engine.session(Task::WordCount).unwrap();
            let mut crashes = 0u32;
            for round in 0..2u64 {
                session.device().trip_after_persists(point);
                let attempt = catch_unwind(AssertUnwindSafe(|| session.traverse()));
                session.device().clear_trip();
                match attempt {
                    Ok(Ok(_)) => break, // finished before the point this round
                    Ok(Err(e)) => panic!("point {point} round {round}: {e}"),
                    Err(payload) => assert!(panic_is_injected_crash(&*payload)),
                }
                crashes += 1;
                session.crash_torn(0xBAD5EED ^ point ^ (round << 32));
                session.recover().unwrap();
            }
            assert!(crashes > 0, "point {point}: no crash fired");
            assert_eq!(
                session.traverse().unwrap(),
                clean,
                "point {point}: diverged after {crashes} crash(es)"
            );
        }
    }
}
