//! Edge-case matrix: configuration extremes, degenerate corpora, and
//! parameter sweeps that the main correctness suite doesn't reach.

use std::collections::BTreeMap;

use ntadoc_repro::{
    compress_corpus, Compressed, Engine, EngineConfig, Persistence, Task, TokenizerConfig,
    UncompressedEngine,
};

fn small() -> Compressed {
    compress_corpus(
        &[
            ("x".to_string(), "one two three one two three four five".repeat(8)),
            ("y".to_string(), "one two six one two six".repeat(8)),
        ],
        &TokenizerConfig::default(),
    )
}

#[test]
fn ngram_width_sweep_matches_oracle() {
    let comp = small();
    let expanded = comp.grammar.expand_files();
    for n in [2usize, 3, 4, 5, 7] {
        let mut cfg = EngineConfig::ntadoc();
        cfg.ngram = n;
        let mut engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
        let out = engine.run(Task::SequenceCount).unwrap();
        let mut oracle: BTreeMap<Vec<String>, u64> = BTreeMap::new();
        for f in &expanded {
            for win in f.windows(n) {
                let gram: Vec<String> =
                    win.iter().map(|&w| comp.dict.word(w).to_string()).collect();
                *oracle.entry(gram).or_insert(0) += 1;
            }
        }
        assert_eq!(out.as_sequence_counts().unwrap(), &oracle, "n = {n}");
        // Baseline agrees at every width too.
        let mut base = UncompressedEngine::builder(comp.clone()).config(cfg).build();
        assert_eq!(base.run(Task::SequenceCount).unwrap(), out, "baseline n = {n}");
    }
}

#[test]
fn top_k_sweep_truncates_consistently() {
    let comp = small();
    for k in [1usize, 2, 100] {
        let mut cfg = EngineConfig::ntadoc();
        cfg.top_k = k;
        let mut engine = Engine::builder(comp.clone()).config(cfg).build().unwrap();
        let out = engine.run(Task::TermVector).unwrap();
        for (f, words) in out.as_term_vectors().unwrap() {
            assert!(words.len() <= k, "{f} returned {} > {k} words", words.len());
            // Counts must be non-increasing.
            for pair in words.windows(2) {
                assert!(pair[0].1 >= pair[1].1, "{f}: top-k not sorted by count");
            }
        }
    }
}

#[test]
fn persistence_none_on_nvm_still_correct() {
    let comp = small();
    let mut cfg = EngineConfig::ntadoc();
    cfg.persistence = Persistence::None;
    let mut engine = Engine::builder(comp.clone()).config(cfg).build().unwrap();
    let out = engine.run(Task::WordCount).unwrap();
    let mut reference =
        Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    assert_eq!(out, reference.run(Task::WordCount).unwrap());
}

#[test]
fn zero_repetition_corpus_works() {
    // Every word unique: the grammar cannot compress at all.
    let text: String = (0..500).map(|i| format!("unique{i} ")).collect();
    let comp = compress_corpus(&[("u".to_string(), text)], &TokenizerConfig::default());
    assert_eq!(comp.grammar.stats().vocabulary, 500);
    let mut engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let out = engine.run(Task::WordCount).unwrap();
    assert_eq!(out.as_word_counts().unwrap().len(), 500);
    assert!(out.as_word_counts().unwrap().values().all(|&c| c == 1));
}

#[test]
fn single_word_repeated_corpus_works() {
    let comp =
        compress_corpus(&[("m".to_string(), "echo ".repeat(5000))], &TokenizerConfig::default());
    for task in Task::ALL {
        let mut engine =
            Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
        let out = engine.run(task).unwrap();
        if let Ok(wc) = out.as_word_counts() {
            assert_eq!(wc.get("echo"), Some(&5000));
        }
        if let Ok(sc) = out.as_sequence_counts() {
            assert_eq!(sc.get(&vec!["echo".to_string(); 3]), Some(&4998));
        }
    }
}

#[test]
fn unicode_words_survive_the_whole_pipeline() {
    let comp = compress_corpus(
        &[
            ("zh".to_string(), "数据 压缩 分析 数据 压缩 分析 非易失 内存".to_string()),
            ("mix".to_string(), "naïve café naïve データ 数据".to_string()),
        ],
        &TokenizerConfig::default(),
    );
    let mut engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let out = engine.run(Task::WordCount).unwrap();
    let wc = out.as_word_counts().unwrap();
    assert_eq!(wc.get("数据"), Some(&3));
    assert_eq!(wc.get("naïve"), Some(&2));
    // Serialization keeps UTF-8 intact.
    let img = ntadoc_repro::serialize_compressed(&comp).unwrap();
    let back = ntadoc_repro::deserialize_compressed(&img).unwrap();
    assert_eq!(back.dict.id_of("数据"), comp.dict.id_of("数据"));
}

#[test]
fn very_long_words_round_trip() {
    let long = "x".repeat(10_000);
    let text = format!("{long} short {long} short");
    let comp = compress_corpus(&[("l".to_string(), text)], &TokenizerConfig::default());
    let mut engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let out = engine.run(Task::WordCount).unwrap();
    assert_eq!(out.as_word_counts().unwrap().get(&long), Some(&2));
}

#[test]
fn many_empty_files_between_content() {
    let files: Vec<(String, String)> = (0..20)
        .map(|i| {
            let text = if i % 3 == 0 { "data point data".to_string() } else { String::new() };
            (format!("f{i}"), text)
        })
        .collect();
    let comp = compress_corpus(&files, &TokenizerConfig::default());
    assert_eq!(comp.file_count(), 20);
    let mut engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let out = engine.run(Task::InvertedIndex).unwrap();
    let idx = out.as_inverted_index().unwrap();
    assert_eq!(idx.get("data").map(|f| f.len()), Some(7)); // files 0,3,6,9,12,15,18
}

#[test]
fn repeated_runs_on_one_engine_are_deterministic() {
    let comp = small();
    let mut engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let a = engine.run(Task::Sort).unwrap();
    let ra = engine.last_report.clone().unwrap();
    let b = engine.run(Task::Sort).unwrap();
    let rb = engine.last_report.clone().unwrap();
    assert_eq!(a, b);
    assert_eq!(ra.total_ns(), rb.total_ns(), "virtual time must be deterministic");
    assert_eq!(ra.stats, rb.stats);
}

#[test]
fn run_report_serializes_to_json() {
    use ntadoc_repro::Json;
    let comp = small();
    let mut engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    engine.run(Task::WordCount).unwrap();
    let rep = engine.last_report.as_ref().unwrap();
    let json = rep.to_json();
    assert_eq!(json.get("version").and_then(Json::as_u64), Some(2));
    assert_eq!(json.get("device").and_then(Json::as_str), Some("NVM"));
    let stats_ns =
        json.get("stats").and_then(|s| s.get("virtual_ns")).and_then(Json::as_u64).unwrap();
    assert!(stats_ns > 0);
    // Full text round trip through the hand-rolled parser.
    let parsed = Json::parse(&json.pretty()).unwrap();
    let round = ntadoc_repro::RunReport::from_json(&parsed).unwrap();
    assert_eq!(round.stats, rep.stats);
    assert_eq!(round.spans, rep.spans);
    assert_eq!(round.metrics, rep.metrics);
}
