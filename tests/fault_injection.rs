//! Fault-injection recovery: crash the device at arbitrary points *inside*
//! the traversal phase (not just at phase boundaries) and verify that
//! phase-level recovery — re-running the traversal against the persisted
//! init-phase checkpoint — always converges to the crash-free result.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ntadoc_repro::{compress_corpus, Engine, EngineConfig, Task, TokenizerConfig};

fn corpus() -> ntadoc_grammar::Compressed {
    let files = vec![
        ("a".to_string(), "red green blue red green yellow red green blue cyan".repeat(30)),
        ("b".to_string(), "red green blue magenta red green".repeat(30)),
    ];
    compress_corpus(&files, &TokenizerConfig::default())
}

#[test]
fn crash_at_many_points_inside_traversal_recovers() {
    let comp = corpus();
    let mut clean_engine =
        Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let clean = clean_engine.run(Task::WordCount).unwrap();

    for &trip in &[1u64, 5, 23, 100, 400, 1500] {
        let engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
        let mut session = engine.session(Task::WordCount).unwrap();
        // Arm the fault: the Nth write during traversal panics.
        session.sim_device().trip_after_writes(trip);
        let attempt = catch_unwind(AssertUnwindSafe(|| session.traverse()));
        session.sim_device().clear_trip();
        match attempt {
            Ok(Ok(out)) => {
                // Fault landed after traversal finished writing; the
                // completed run must already be correct.
                assert_eq!(out, clean, "trip={trip}: completed run differs");
                continue;
            }
            Ok(Err(e)) => panic!("trip={trip}: unexpected engine error {e}"),
            Err(_) => { /* the injected fault fired mid-run */ }
        }
        // Torn power failure at the fault point — the interrupted store
        // lands as an arbitrary subset of its 8-byte words — then §IV-E
        // recovery: the init checkpoint survives, the traversal re-runs.
        session.crash_torn(trip.wrapping_mul(0x9E37_79B9));
        session.recover().unwrap();
        let recovered = session.traverse().unwrap();
        assert_eq!(recovered, clean, "trip={trip}: recovered result differs");
    }
}

#[test]
fn crash_inside_file_task_traversal_recovers() {
    let comp = corpus();
    let mut clean_engine =
        Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let clean = clean_engine.run(Task::InvertedIndex).unwrap();

    for &trip in &[3u64, 50, 700] {
        let engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
        let mut session = engine.session(Task::InvertedIndex).unwrap();
        session.sim_device().trip_after_writes(trip);
        let attempt = catch_unwind(AssertUnwindSafe(|| session.traverse()));
        session.sim_device().clear_trip();
        if let Ok(Ok(out)) = attempt {
            assert_eq!(out, clean);
            continue;
        }
        session.crash_torn(trip);
        session.recover().unwrap();
        assert_eq!(session.traverse().unwrap(), clean, "trip={trip}");
    }
}

#[test]
fn wear_tracking_reports_hotspots() {
    use ntadoc_repro::{DeviceProfile, SimDevice};
    let dev = SimDevice::new(DeviceProfile::nvm_optane(), 1 << 16);
    dev.enable_wear_tracking();
    // Hammer one line, touch a few others once.
    for _ in 0..50 {
        dev.write_u64(0, 7);
    }
    for i in 1..5u64 {
        dev.write_u64(i * 4096, 1);
    }
    let (max_wear, lines) = dev.wear_stats();
    assert_eq!(max_wear, 50);
    assert_eq!(lines, 5);
    // The top-N breakdown names the hammered line first and ranks the rest.
    let top = dev.wear_top(3);
    assert_eq!(top[0], (0, 50));
    assert_eq!(top.len(), 3);
    assert!(top[1].1 <= top[0].1 && top[2].1 <= top[1].1);
}

#[test]
fn wear_top_surfaces_in_run_reports() {
    let comp = corpus();
    let engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let mut session = engine.session(Task::WordCount).unwrap();
    session.sim_device().enable_wear_tracking();
    session.traverse().unwrap();
    let report = session.report();
    assert!(!report.wear_top.is_empty(), "wear breakdown must reach the report");
    assert!(report.wear_top.len() <= 8);
    // Hottest-first ordering.
    for pair in report.wear_top.windows(2) {
        assert!(pair[0].1 >= pair[1].1);
    }
    // Without tracking the breakdown stays empty.
    let engine2 = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let mut session2 = engine2.session(Task::WordCount).unwrap();
    session2.traverse().unwrap();
    assert!(session2.report().wear_top.is_empty());
}
