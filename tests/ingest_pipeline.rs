//! Property-based coverage of the chunk-parallel ingest pipeline: for any
//! corpus and any chunk width, the merged grammar expands to the same
//! corpus as the serial build, engines over it produce identical task
//! outputs, virtual time is worker-count-independent, and the summation's
//! upper bounds stay sound over the merged rule shapes.

use std::collections::HashSet;

use proptest::collection::vec;
use proptest::prelude::*;

use ntadoc::{ingest_corpus, upper_bounds, IngestOptions};
use ntadoc_pmem::par;
use ntadoc_repro::{
    compress_corpus, compress_corpus_chunked, Engine, EngineBuilder, EngineConfig, Grammar,
    MergeOptions, Task, TokenizerConfig,
};

/// Arbitrary corpora: 1–5 files of small-alphabet words (some empty), so
/// chunk boundaries land mid-file, on file edges, and past tiny files.
fn corpus_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    vec(vec(0u32..18, 0..160), 1..5).prop_map(|files| {
        files
            .into_iter()
            .enumerate()
            .map(|(i, words)| {
                let text = words.iter().map(|w| format!("w{w}")).collect::<Vec<_>>().join(" ");
                (format!("f{i}"), text)
            })
            .collect()
    })
}

/// Distinct word ids in each rule's expansion (the true word-list
/// lengths the summation bounds must dominate).
fn actual_word_lists(g: &Grammar) -> Vec<u64> {
    let order = g.topo_order();
    let mut sets: Vec<HashSet<u32>> = vec![HashSet::new(); g.rules.len()];
    for &r in order.iter().rev() {
        let mut set = HashSet::new();
        for s in &g.rules[r as usize].symbols {
            if s.is_word() {
                set.insert(s.payload());
            } else if s.is_rule() {
                set.extend(sets[s.payload() as usize].iter().copied());
            }
        }
        sets[r as usize] = set;
    }
    sets.into_iter().map(|s| s.len() as u64).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chunked_grammars_preserve_the_corpus(files in corpus_strategy()) {
        let cfg = TokenizerConfig::default();
        let serial = compress_corpus(&files, &cfg);
        for w in [1usize, 2, 4, 8] {
            let chunked = compress_corpus_chunked(&files, &cfg, w, &MergeOptions::default());
            chunked.grammar.validate().unwrap();
            prop_assert_eq!(
                chunked.grammar.expand_text(&chunked.dict),
                serial.grammar.expand_text(&serial.dict),
                "w={}", w
            );
            prop_assert_eq!(
                chunked.dict.iter().collect::<Vec<_>>(),
                serial.dict.iter().collect::<Vec<_>>(),
                "w={}", w
            );
        }
    }

    #[test]
    fn chunked_task_outputs_match_serial(files in corpus_strategy()) {
        // Engines only make sense over non-empty corpora.
        if files.iter().all(|(_, t)| t.is_empty()) {
            return Ok(());
        }
        let serial = {
            let comp = compress_corpus(&files, &TokenizerConfig::default());
            let mut e = Engine::builder(comp).config(EngineConfig::ntadoc()).build().unwrap();
            (e.run(Task::WordCount).unwrap(), e.run(Task::TermVector).unwrap())
        };
        for w in [1usize, 2, 4, 8] {
            let mut e = EngineBuilder::from_files(files.clone())
                .ingest_chunks(w)
                .config(EngineConfig::ntadoc())
                .build()
                .unwrap();
            prop_assert_eq!(e.run(Task::WordCount).unwrap(), serial.0.clone(), "w={}", w);
            prop_assert_eq!(e.run(Task::TermVector).unwrap(), serial.1.clone(), "w={}", w);
        }
    }

    #[test]
    fn ingest_virtual_time_is_worker_count_independent(files in corpus_strategy()) {
        for w in [2usize, 8] {
            let opts = IngestOptions { chunks: w, ..IngestOptions::default() };
            let run = |threads: usize| {
                par::with_threads(threads, || {
                    let (comp, r) = ingest_corpus(&files, &opts);
                    (comp.grammar, r.virtual_ns, r.chunk_ns)
                })
            };
            let base = run(1);
            prop_assert_eq!(run(4), base.clone(), "w={} at 4 threads", w);
            prop_assert_eq!(run(8), base, "w={} at 8 threads", w);
        }
    }

    #[test]
    fn summation_bounds_stay_sound_over_merged_grammars(files in corpus_strategy()) {
        let cfg = TokenizerConfig::default();
        let serial = compress_corpus(&files, &cfg);
        let serial_actual = actual_word_lists(&serial.grammar);
        for w in [1usize, 2, 4, 8] {
            let chunked = compress_corpus_chunked(&files, &cfg, w, &MergeOptions::default());
            let bounds = upper_bounds(&chunked.grammar).bounds;
            let actual = actual_word_lists(&chunked.grammar);
            for (r, (&b, &a)) in bounds.iter().zip(actual.iter()).enumerate() {
                prop_assert!(b >= a, "w={} rule {}: bound {} under-estimates {}", w, r, b, a);
            }
            // The root's word list is the corpus vocabulary — the same
            // list the serial build's root carries — so the merged bound
            // still upper-bounds the serial build's word-list length.
            prop_assert!(
                bounds[0] >= serial_actual[0],
                "w={}: root bound {} under-estimates serial root list {}",
                w, bounds[0], serial_actual[0]
            );
        }
    }
}
