//! The pool-layout contract: id encoding, entry padding, and line-packed
//! placement change *where bytes live and what they cost* — never what a
//! task computes. Every layout variant must produce byte-identical task
//! outputs at any worker count, with a virtual clock that is a pure
//! function of (corpus, task, layout). Persisted pools carry their layout
//! in the sealed header: reopening adopts the on-media layout regardless
//! of the engine's configured one, and an unknown layout id refuses to
//! open instead of misdecoding.

use std::path::PathBuf;

use ntadoc_pmem::par;
use ntadoc_repro::{
    compress_corpus, Compressed, DeviceProfile, Engine, FileDevice, PoolLayout, PoolLayoutConfig,
    Task, TaskOutput, TokenizerConfig,
};

use proptest::collection::vec;
use proptest::prelude::*;

/// The five named layout points of the ablation.
const LAYOUT_NAMES: [&str; 5] = ["fixed", "fixed-pad", "varint", "split", "packed"];

fn layouts() -> Vec<PoolLayoutConfig> {
    LAYOUT_NAMES
        .iter()
        .map(|n| PoolLayoutConfig::parse(n).unwrap_or_else(|| panic!("layout name {n}")))
        .collect()
}

fn corpus() -> Compressed {
    let files = vec![
        ("a".to_string(), "the quick brown fox jumps over the lazy dog the end".repeat(30)),
        ("b".to_string(), "pack my box with five dozen liquor jugs the fox".repeat(30)),
        ("c".to_string(), "sphinx of black quartz judge my vow the quick judge".repeat(30)),
    ];
    compress_corpus(&files, &TokenizerConfig::default())
}

fn engine_with(comp: &Compressed, layout: PoolLayoutConfig) -> Engine {
    Engine::builder(comp.clone())
        .config(ntadoc_repro::EngineConfig::ntadoc())
        .pool_layout(layout)
        .build()
        .unwrap()
}

/// Run `task` under `layout` with `threads` workers: output + virtual_ns.
fn run_with(
    comp: &Compressed,
    layout: PoolLayoutConfig,
    task: Task,
    threads: usize,
) -> (TaskOutput, u64) {
    par::with_threads(threads, || {
        let mut e = engine_with(comp, layout);
        let out = e.run(task).unwrap();
        (out, e.last_report.as_ref().unwrap().total_ns())
    })
}

#[test]
fn every_layout_is_deterministic_and_output_identical() {
    let comp = corpus();
    for task in Task::ALL {
        let mut reference: Option<TaskOutput> = None;
        for layout in layouts() {
            let (base_out, base_ns) = run_with(&comp, layout, task, 1);
            // Worker count must not change the output or the virtual clock
            // under any layout.
            for threads in [4, 8] {
                let (out, ns) = run_with(&comp, layout, task, threads);
                assert_eq!(
                    out,
                    base_out,
                    "{task} output diverged at {threads} threads under {}",
                    layout.name()
                );
                assert_eq!(
                    ns,
                    base_ns,
                    "{task} virtual time diverged at {threads} threads under {}",
                    layout.name()
                );
            }
            // Layout must not change the output either (only the cost).
            match &reference {
                None => reference = Some(base_out),
                Some(r) => assert_eq!(
                    &base_out,
                    r,
                    "{task} output under layout {} diverged from the fixed layout",
                    layout.name()
                ),
            }
        }
    }
}

fn tmp_pool(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ntadoc-layoutdet-{}-{name}.ntdp", std::process::id()))
}

#[test]
fn reopen_adopts_the_header_sealed_layout() {
    let comp = corpus();
    let packed = PoolLayoutConfig::packed();
    let legacy = PoolLayoutConfig::legacy();

    // Create a pool under the packed layout and record its answers.
    let pool = tmp_pool("adopt");
    let _ = std::fs::remove_file(&pool);
    let eng = engine_with(&comp, packed);
    let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
    let out = session.traverse().unwrap();
    let packed_ns = session.sim_device().stats().virtual_ns;
    assert_eq!(session.pool_file().unwrap().header().dag_layout, packed.id());
    drop(session);
    drop(eng);

    // An engine *configured* for the legacy layout reopens the file: the
    // sealed header wins, so the run replays the packed layout exactly —
    // same output, same virtual cost, same header id.
    let eng = engine_with(&comp, legacy);
    let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
    assert_eq!(session.traverse().unwrap(), out, "adopted layout diverged");
    assert_eq!(
        session.sim_device().stats().virtual_ns,
        packed_ns,
        "reopen under a different configured layout must replay the sealed layout's cost"
    );
    assert_eq!(
        session.pool_file().unwrap().header().dag_layout,
        packed.id(),
        "reopen must not reseal the pool with the engine's configured layout"
    );
    let _ = std::fs::remove_file(&pool);
}

#[test]
fn legacy_pools_reopen_as_fixed_layout() {
    // Pools written before the layout header existed carry dag_layout 0,
    // which must decode as the legacy fixed-u32 layout.
    assert_eq!(PoolLayoutConfig::from_id(0).unwrap(), PoolLayoutConfig::legacy());

    let comp = corpus();
    let pool = tmp_pool("legacy");
    let _ = std::fs::remove_file(&pool);
    let eng = engine_with(&comp, PoolLayoutConfig::legacy());
    let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
    let out = session.traverse().unwrap();
    assert_eq!(session.pool_file().unwrap().header().dag_layout, 0);
    drop(session);

    let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
    assert_eq!(session.traverse().unwrap(), out);
    let _ = std::fs::remove_file(&pool);
}

#[test]
fn unknown_layout_ids_refuse_to_open() {
    // A pool sealed by some future binary with a layout this build does
    // not know must refuse loudly — decoding id streams with the wrong
    // decoder would silently produce a different DAG.
    let pool = tmp_pool("unknown");
    let _ = std::fs::remove_file(&pool);
    let cap: u64 = 1 << 20;
    let layout = PoolLayout {
        capacity: cap,
        main_len: cap - 2 * (64 << 10),
        scratch_len: 64 << 10,
        log_len: 64 << 10,
    };
    let dev =
        FileDevice::create_with_dag_layout(&pool, DeviceProfile::nvm_optane(), layout, 0xFFFF)
            .unwrap();
    drop(dev);

    let eng = engine_with(&corpus(), PoolLayoutConfig::legacy());
    match eng.open_pool(&pool, Task::WordCount) {
        Err(e) => {
            let msg = e.to_string();
            assert!(msg.contains("layout id 0xffff"), "refusal must name the layout id: {msg}");
        }
        Ok(_) => panic!("a pool with an unknown layout id must not open"),
    }
    let _ = std::fs::remove_file(&pool);
}

/// Arbitrary corpora: 1-3 files of small-alphabet words (the shape that
/// makes grammars share rules and the pruned views non-trivial).
fn corpus_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    vec(vec(0u32..15, 1..120), 1..3).prop_map(|files| {
        files
            .into_iter()
            .enumerate()
            .map(|(i, words)| {
                let text = words.iter().map(|w| format!("w{w}")).collect::<Vec<_>>().join(" ");
                (format!("f{i}"), text)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property form of the contract: for arbitrary corpora, every dense
    /// layout agrees with the fixed layout on every servable task shape,
    /// and parallelism does not perturb either.
    #[test]
    fn arbitrary_corpora_are_layout_invariant(files in corpus_strategy()) {
        let comp = compress_corpus(&files, &TokenizerConfig::default());
        if comp.grammar.rule_count() == 0 {
            return Ok(());
        }
        for task in [Task::WordCount, Task::InvertedIndex, Task::SequenceCount] {
            let (base_out, _) = run_with(&comp, PoolLayoutConfig::legacy(), task, 1);
            for layout in layouts() {
                let (out, ns1) = run_with(&comp, layout, task, 1);
                prop_assert_eq!(
                    &out, &base_out,
                    "{} output diverged under {}", task, layout.name()
                );
                let (out4, ns4) = run_with(&comp, layout, task, 4);
                prop_assert_eq!(&out4, &base_out);
                prop_assert_eq!(ns1, ns4, "{} virtual time diverged under {}", task, layout.name());
            }
        }
    }
}
