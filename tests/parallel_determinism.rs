//! Parallelism must never change results: task outputs, the virtual
//! clock, and the full observability output (span tree + metric
//! snapshot) are bit-identical for any worker count, both for classic
//! engine runs and for concurrent serve-mode batches.

use ntadoc_pmem::par;
use ntadoc_repro::{
    compress_corpus, ingest_corpus, Compressed, Engine, EngineBuilder, EngineConfig, IngestOptions,
    PmemError, Query, RunReport, Task, TaskOutput, TenantId, TokenizerConfig,
};

/// Wrap bare tasks as single-tenant typed queries.
fn queries(tasks: &[Task]) -> Vec<Query> {
    tasks.iter().map(|&t| Query::new(TenantId::default(), t)).collect()
}

fn raw_files() -> Vec<(String, String)> {
    vec![
        ("a".to_string(), "the quick brown fox jumps over the lazy dog the end".repeat(40)),
        ("b".to_string(), "pack my box with five dozen liquor jugs the fox".repeat(40)),
        ("c".to_string(), "sphinx of black quartz judge my vow the quick judge".repeat(40)),
    ]
}

fn corpus() -> Compressed {
    compress_corpus(&raw_files(), &TokenizerConfig::default())
}

/// Run `task` under `threads` workers, returning output and total virtual
/// time.
fn run_with(comp: &Compressed, cfg: EngineConfig, task: Task, threads: usize) -> (TaskOutput, u64) {
    par::with_threads(threads, || {
        let mut e = Engine::builder(comp.clone()).config(cfg).build().unwrap();
        let out = e.run(task).unwrap();
        (out, e.last_report.as_ref().unwrap().total_ns())
    })
}

#[test]
fn engine_runs_are_identical_for_any_worker_count() {
    let comp = corpus();
    for cfg in [EngineConfig::ntadoc(), EngineConfig::naive()] {
        for task in Task::ALL {
            let (base_out, base_ns) = run_with(&comp, cfg.clone(), task, 1);
            for threads in [2, 8] {
                let (out, ns) = run_with(&comp, cfg.clone(), task, threads);
                assert_eq!(out, base_out, "{task} output diverged at {threads} threads");
                assert_eq!(ns, base_ns, "{task} virtual time diverged at {threads} threads");
            }
        }
    }
}

#[test]
fn serve_outputs_match_classic_runs() {
    let comp = corpus();
    let mut engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let servable = [Task::WordCount, Task::Sort, Task::TermVector, Task::InvertedIndex];
    let classic: Vec<TaskOutput> = servable.iter().map(|&t| engine.run(t).unwrap()).collect();
    let serve = engine.serve().unwrap();
    let outs: Vec<TaskOutput> = serve
        .run_queries(&queries(&servable))
        .unwrap()
        .into_iter()
        .map(|r| r.into_output())
        .collect();
    assert_eq!(outs, classic);
}

#[test]
fn serve_batches_are_deterministic_across_worker_counts() {
    let comp = corpus();
    let engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let serve = engine.serve().unwrap();
    let batch: Vec<Task> = (0..24)
        .map(|i| [Task::WordCount, Task::Sort, Task::TermVector, Task::InvertedIndex][i % 4])
        .collect();
    let mut reference: Option<(Vec<TaskOutput>, u64)> = None;
    for threads in [1, 2, 8, 1] {
        let v0 = serve.sim_device().stats().virtual_ns;
        let outs: Vec<TaskOutput> =
            par::with_threads(threads, || serve.run_queries(&queries(&batch)).unwrap())
                .into_iter()
                .map(|r| r.into_output())
                .collect();
        let delta = serve.sim_device().stats().virtual_ns - v0;
        match &reference {
            None => reference = Some((outs, delta)),
            Some((ref_outs, ref_delta)) => {
                assert_eq!(&outs, ref_outs, "batch outputs diverged at {threads} threads");
                assert_eq!(delta, *ref_delta, "batch virtual time diverged at {threads} threads");
            }
        }
    }
}

#[test]
fn serve_rejects_sequence_tasks() {
    let comp = corpus();
    let engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let serve = engine.serve().unwrap();
    let err = match serve.run_queries(&queries(&[Task::WordCount, Task::SequenceCount])) {
        Err(e) => e,
        Ok(_) => panic!("sequence task must not be servable"),
    };
    assert!(matches!(err, PmemError::Unsupported(_)), "got {err:?}");
}

#[test]
fn serve_requires_pruned_config() {
    let comp = corpus();
    let engine = Engine::builder(comp.clone()).config(EngineConfig::naive()).build().unwrap();
    let err = match engine.serve() {
        Err(e) => e,
        Ok(_) => panic!("serve must require the pruned configuration"),
    };
    assert!(matches!(err, PmemError::Unsupported(_)), "got {err:?}");
}

#[test]
fn empty_corpus_is_a_clean_builder_error() {
    let comp = compress_corpus(&[], &TokenizerConfig::default());
    let err = match Engine::builder(comp).config(EngineConfig::ntadoc()).build() {
        Err(e) => e,
        Ok(_) => panic!("empty corpus must be rejected"),
    };
    assert!(matches!(err, PmemError::Unsupported(_)), "got {err:?}");
}

/// Run `task` under `threads` workers and return the full report.
fn report_with(comp: &Compressed, cfg: EngineConfig, task: Task, threads: usize) -> RunReport {
    par::with_threads(threads, || {
        let mut e = Engine::builder(comp.clone()).config(cfg).build().unwrap();
        e.run(task).unwrap();
        e.last_report.take().unwrap()
    })
}

#[test]
fn span_trees_and_metrics_are_identical_for_any_worker_count() {
    // The determinism rule of the obs layer: spans open and close on the
    // controlling thread, parallel work joins the virtual clock as a
    // lane-folded makespan, so the *entire serialized report* — span
    // tree, metric snapshot, access stats — must be byte-identical no
    // matter how many workers ran the traversal.
    let comp = corpus();
    for task in [Task::WordCount, Task::TermVector, Task::SequenceCount] {
        let base = report_with(&comp, EngineConfig::ntadoc(), task, 1);
        assert!(base.spans.span_count() > 3, "{task}: expected a nested span tree");
        for threads in [4, 8] {
            let rep = report_with(&comp, EngineConfig::ntadoc(), task, threads);
            assert_eq!(rep.spans, base.spans, "{task} span tree diverged at {threads} threads");
            assert_eq!(rep.metrics, base.metrics, "{task} metrics diverged at {threads} threads");
            assert_eq!(
                rep.to_json().pretty(),
                base.to_json().pretty(),
                "{task} serialized report diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn ingest_is_identical_for_any_worker_count() {
    // The chunk-parallel build obeys the same contract as traversal: the
    // produced grammar, dictionary, per-chunk costs, span tree, and total
    // virtual time are bit-identical for any RAYON_NUM_THREADS.
    let files = raw_files();
    for chunks in [1usize, 4, 8] {
        let opts = IngestOptions { chunks, ..IngestOptions::default() };
        let build = |threads: usize| {
            par::with_threads(threads, || {
                let (comp, report) = ingest_corpus(&files, &opts);
                (
                    comp.grammar,
                    comp.dict.iter().map(|(_, w)| w.to_string()).collect::<Vec<_>>(),
                    report,
                )
            })
        };
        let (base_g, base_d, base_r) = build(1);
        for threads in [4, 8] {
            let (g, d, r) = build(threads);
            assert_eq!(g, base_g, "grammar diverged at {threads} threads (chunks={chunks})");
            assert_eq!(d, base_d, "dictionary diverged at {threads} threads (chunks={chunks})");
            assert_eq!(
                r.virtual_ns, base_r.virtual_ns,
                "ingest virtual time diverged at {threads} threads (chunks={chunks})"
            );
            assert_eq!(r.chunk_ns, base_r.chunk_ns, "chunk costs diverged (chunks={chunks})");
            assert_eq!(r.spans, base_r.spans, "ingest span tree diverged (chunks={chunks})");
        }
    }
}

#[test]
fn chunked_engines_agree_with_serial_engines_for_any_worker_count() {
    // End to end: an engine built from raw files with chunk-parallel
    // ingest must produce the same task outputs as one built over the
    // serial compression, for every worker count.
    let files = raw_files();
    let serial = {
        let mut e = Engine::builder(corpus()).config(EngineConfig::ntadoc()).build().unwrap();
        e.run(Task::WordCount).unwrap()
    };
    let mut reference_ns: Option<u64> = None;
    for threads in [1usize, 4, 8] {
        let (out, ingest_ns) = par::with_threads(threads, || {
            let mut e = EngineBuilder::from_files(files.clone())
                .ingest_chunks(8)
                .config(EngineConfig::ntadoc())
                .build()
                .unwrap();
            let ns = e.ingest_report().unwrap().virtual_ns;
            (e.run(Task::WordCount).unwrap(), ns)
        });
        assert_eq!(out, serial, "chunked-engine output diverged at {threads} threads");
        match reference_ns {
            None => reference_ns = Some(ingest_ns),
            Some(r) => {
                assert_eq!(ingest_ns, r, "ingest virtual time diverged at {threads} threads")
            }
        }
    }
}

#[test]
fn serve_session_reports_are_identical_for_any_worker_count() {
    let comp = corpus();
    let batch: Vec<Task> = (0..16)
        .map(|i| [Task::WordCount, Task::Sort, Task::TermVector, Task::InvertedIndex][i % 4])
        .collect();
    let serve_report = |threads: usize| {
        let engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
        let serve = engine.serve().unwrap();
        par::with_threads(threads, || serve.run_queries(&queries(&batch)).unwrap());
        serve.report()
    };
    let base = serve_report(1);
    for threads in [4, 8] {
        let rep = serve_report(threads);
        assert_eq!(rep.spans, base.spans, "serve span tree diverged at {threads} threads");
        assert_eq!(rep.metrics, base.metrics, "serve metrics diverged at {threads} threads");
        assert_eq!(
            rep.to_json().pretty(),
            base.to_json().pretty(),
            "serve serialized report diverged at {threads} threads"
        );
    }
}
