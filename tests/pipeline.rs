//! Full-pipeline integration: datagen → Sequitur → coarsening →
//! serialization → every engine on every device, agreeing on every task.

use ntadoc_repro::{
    deserialize_compressed, serialize_compressed, DatasetSpec, DeviceProfile, Engine, EngineConfig,
    Task, UncompressedEngine,
};

#[test]
fn generated_corpora_survive_serialization() {
    for spec in DatasetSpec::all() {
        let spec = spec.scaled(0.02);
        let comp = ntadoc_repro::generate_compressed(&spec);
        let img = serialize_compressed(&comp).unwrap();
        let back = deserialize_compressed(&img).unwrap();
        assert_eq!(back.grammar, comp.grammar, "dataset {}", spec.name);
        assert_eq!(back.file_names, comp.file_names);
        assert_eq!(
            back.grammar.expand_text(&back.dict),
            comp.grammar.expand_text(&comp.dict),
            "dataset {}",
            spec.name
        );
    }
}

#[test]
fn all_engines_agree_on_dataset_a() {
    let comp = ntadoc_repro::generate_compressed(&DatasetSpec::a().scaled(0.05));
    for task in Task::ALL {
        let mut nt = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
        let reference = nt.run(task).unwrap();
        for (label, cfg) in
            [("op-level", EngineConfig::ntadoc_oplevel()), ("naive", EngineConfig::naive())]
        {
            let mut e = Engine::builder(comp.clone()).config(cfg).build().unwrap();
            assert_eq!(e.run(task).unwrap(), reference, "{label}/{task}");
        }
        let mut dram = Engine::builder(comp.clone())
            .config(EngineConfig::tadoc_dram())
            .profile(DeviceProfile::dram())
            .build()
            .unwrap();
        assert_eq!(dram.run(task).unwrap(), reference, "dram/{task}");
        for hdd in [false, true] {
            let b = Engine::builder(comp.clone()).config(EngineConfig::ntadoc());
            let mut block = if hdd { b.hdd() } else { b.ssd() }.build().unwrap();
            assert_eq!(block.run(task).unwrap(), reference, "block(hdd={hdd})/{task}");
        }
        let mut base =
            UncompressedEngine::builder(comp.clone()).config(EngineConfig::ntadoc()).build();
        assert_eq!(base.run(task).unwrap(), reference, "baseline/{task}");
    }
}

#[test]
fn many_files_dataset_b_agrees_across_strategies() {
    use ntadoc_repro::Traversal;
    let comp = ntadoc_repro::generate_compressed(&DatasetSpec::b().scaled(0.05));
    for task in [Task::TermVector, Task::InvertedIndex, Task::RankedInvertedIndex] {
        let mut bu_cfg = EngineConfig::ntadoc();
        bu_cfg.traversal = Traversal::BottomUp;
        let mut td_cfg = EngineConfig::ntadoc();
        td_cfg.traversal = Traversal::TopDown;
        let mut bu = Engine::builder(comp.clone()).config(bu_cfg).build().unwrap();
        let mut td = Engine::builder(comp.clone()).config(td_cfg).build().unwrap();
        assert_eq!(bu.run(task).unwrap(), td.run(task).unwrap(), "{task}");
    }
}

#[test]
fn reports_expose_phase_times_and_peaks() {
    let comp = ntadoc_repro::generate_compressed(&DatasetSpec::a().scaled(0.03));
    let mut engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    engine.run(Task::WordCount).unwrap();
    let rep = engine.last_report.as_ref().unwrap();
    assert!(rep.init_ns() > 0);
    assert!(rep.traversal_ns() > 0);
    let device_peak = rep.metric_f64(ntadoc_repro::METRIC_DEVICE_PEAK).unwrap();
    let dram_peak = rep.metric_f64(ntadoc_repro::METRIC_DRAM_PEAK).unwrap();
    assert!(device_peak > 0.0, "NVM allocations must be ledgered");
    assert!(dram_peak > 0.0, "host staging must be ledgered");
    assert!(dram_peak < device_peak, "N-TADOC keeps the bulk on the device");
    assert_eq!(rep.device, "NVM");
}

#[test]
fn dram_savings_direction_holds() {
    // The headline §VI-C claim, as an invariant: N-TADOC's DRAM peak is
    // well below TADOC-on-DRAM's for the same task.
    let comp = ntadoc_repro::generate_compressed(&DatasetSpec::a().scaled(0.1));
    let mut nt = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    nt.run(Task::WordCount).unwrap();
    let mut dram = Engine::builder(comp.clone())
        .config(EngineConfig::tadoc_dram())
        .profile(DeviceProfile::dram())
        .build()
        .unwrap();
    dram.run(Task::WordCount).unwrap();
    let peak = |e: &Engine| {
        e.last_report.as_ref().unwrap().metric_f64(ntadoc_repro::METRIC_DRAM_PEAK).unwrap()
    };
    let (nt_peak, dram_peak) = (peak(&nt), peak(&dram));
    assert!(
        nt_peak < 0.6 * dram_peak,
        "expected ≥40% DRAM savings, got N-TADOC {nt_peak} vs TADOC {dram_peak}"
    );
}

#[test]
fn speedup_directions_hold_on_dataset_a() {
    // Shape invariants of Figures 5-7 at test scale: N-TADOC beats the
    // uncompressed baseline and the naive port; DRAM TADOC beats N-TADOC;
    // NVM beats SSD beats HDD.
    let comp = ntadoc_repro::generate_compressed(&DatasetSpec::a().scaled(0.2));
    let task = Task::WordCount;
    let run = |cfg: EngineConfig, dev: u8| -> f64 {
        let mut e = match dev {
            0 => Engine::builder(comp.clone()).config(cfg).build().unwrap(),
            1 => Engine::builder(comp.clone())
                .config(cfg)
                .profile(DeviceProfile::dram())
                .build()
                .unwrap(),
            2 => Engine::builder(comp.clone()).config(cfg).ssd().build().unwrap(),
            _ => Engine::builder(comp.clone()).config(cfg).hdd().build().unwrap(),
        };
        e.run(task).unwrap();
        e.last_report.unwrap().total_secs()
    };
    let nt = run(EngineConfig::ntadoc(), 0);
    let naive = run(EngineConfig::naive(), 0);
    let dram = run(EngineConfig::tadoc_dram(), 1);
    let ssd = run(EngineConfig::ntadoc(), 2);
    let hdd = run(EngineConfig::ntadoc(), 3);
    let mut base = UncompressedEngine::builder(comp.clone()).config(EngineConfig::ntadoc()).build();
    base.run(task).unwrap();
    let base_t = base.last_report.unwrap().total_secs();

    assert!(nt < base_t, "N-TADOC {nt} must beat uncompressed {base_t}");
    assert!(nt < naive, "N-TADOC {nt} must beat the naive port {naive}");
    assert!(dram < nt, "DRAM TADOC {dram} must beat N-TADOC {nt}");
    assert!(nt < ssd, "NVM {nt} must beat SSD {ssd}");
    assert!(ssd < hdd, "SSD {ssd} must beat HDD {hdd}");
}
