//! File-backed pool lifecycle: create, clean shutdown, reopen, torn-commit
//! recovery, header validation, truncation robustness, and `fsck`.
//!
//! Everything here goes through `Engine::open_pool`, so the pool files on
//! disk are the real product of the engine's init/traversal path — the
//! tests then corrupt, truncate, or tear those files and assert the
//! reopen path behaves exactly as §IV-E recovery promises.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use ntadoc_repro::{
    compress_corpus, fsck_pool, panic_is_injected_crash, Compressed, DeviceProfile, Engine,
    EngineConfig, PmemError, PoolBackend, Task, TokenizerConfig, POOL_DATA_AT,
};

fn corpus() -> Compressed {
    let files = vec![
        ("a".to_string(), "one two three one two four five one".repeat(15)),
        ("b".to_string(), "one two three six seven two".repeat(15)),
    ];
    compress_corpus(&files, &TokenizerConfig::default())
}

fn tmp_pool(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ntadoc-poolfile-{}-{name}.ntdp", std::process::id()))
}

fn engine(cfg: EngineConfig) -> Engine {
    Engine::builder(corpus()).config(cfg).build().unwrap()
}

fn engine_on(cfg: EngineConfig, backend: PoolBackend) -> Engine {
    Engine::builder(corpus()).config(cfg).pool_backend(backend).build().unwrap()
}

#[test]
fn create_run_and_reopen_after_clean_shutdown_agree() {
    let pool = tmp_pool("clean");
    let _ = std::fs::remove_file(&pool);
    let eng = engine(EngineConfig::ntadoc());

    let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
    assert!(session.pool_file().is_some(), "open_pool must attach a file backend");
    let first = session.traverse().unwrap();
    let first_ns = session.sim_device().stats().virtual_ns;
    drop(session);
    assert!(pool.exists(), "the pool file must persist past the session");

    // Reopen: header is validated, the durable image loads, init re-runs
    // deterministically — same output, same virtual cost as a fresh run.
    let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
    let second = session.traverse().unwrap();
    assert_eq!(first, second, "reopened pool diverged from the original run");
    assert_eq!(
        first_ns,
        session.sim_device().stats().virtual_ns,
        "reopen changed the virtual cost of an identical run"
    );
    let _ = std::fs::remove_file(&pool);
}

#[test]
fn in_memory_sessions_have_no_file_backend() {
    let eng = engine(EngineConfig::ntadoc());
    let session = eng.session(Task::WordCount).unwrap();
    assert!(session.pool_file().is_none());
}

#[test]
fn open_pool_rejects_volatile_profiles() {
    let pool = tmp_pool("volatile");
    let _ = std::fs::remove_file(&pool);
    let eng = Engine::builder(corpus())
        .config(EngineConfig::ntadoc())
        .profile(DeviceProfile::dram())
        .build()
        .unwrap();
    match eng.open_pool(&pool, Task::WordCount) {
        Err(PmemError::Unsupported(_)) => {}
        Err(e) => panic!("expected Unsupported for a volatile profile, got {e}"),
        Ok(_) => panic!("a volatile profile must not open a file-backed pool"),
    }
    assert!(!pool.exists(), "a rejected open must not leave a file behind");
}

#[test]
fn reopen_after_torn_commit_rolls_back_and_converges() {
    let pool = tmp_pool("torn");
    let _ = std::fs::remove_file(&pool);
    let eng = engine(EngineConfig::ntadoc_oplevel());
    let mut clean_engine = engine(EngineConfig::ntadoc_oplevel());
    let clean = clean_engine.run(Task::WordCount).unwrap();

    // Crash mid-traversal with an open undo-log transaction, tear the
    // on-disk bytes, and abandon the session entirely.
    let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
    session.sim_device().trip_after_persists(40);
    let attempt = catch_unwind(AssertUnwindSafe(|| session.traverse()));
    session.sim_device().clear_trip();
    let payload = attempt.expect_err("the armed crash must fire");
    assert!(panic_is_injected_crash(&*payload));
    session.crash_torn(0xDEADD0C);
    session.pool_file().unwrap().verify_file_matches_device().unwrap();
    drop(session);
    drop(eng);

    // fsck sees the open transaction before recovery touches the file.
    let report = fsck_pool(&pool).unwrap();
    assert!(report.recoverable(), "a torn pool must still be recoverable");

    // A brand-new engine reopens from nothing but the torn file: the
    // undo log rolls the open transaction back, init re-runs, and the
    // output converges to the crash-free result.
    let eng = engine(EngineConfig::ntadoc_oplevel());
    let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
    assert_eq!(session.traverse().unwrap(), clean, "torn-commit recovery diverged");

    // After the clean re-run the log is quiescent again.
    drop(session);
    let report = fsck_pool(&pool).unwrap();
    assert!(!report.log.needs_rollback(), "recovered pool still reports an open transaction");
    let _ = std::fs::remove_file(&pool);
}

#[test]
fn corrupt_headers_are_rejected_not_misread() {
    let pool = tmp_pool("header");
    let _ = std::fs::remove_file(&pool);
    let eng = engine(EngineConfig::ntadoc());
    drop(eng.open_pool(&pool, Task::WordCount).unwrap());

    // Flip one byte inside the sealed header region.
    let mut bytes = std::fs::read(&pool).unwrap();
    bytes[12] ^= 0xFF;
    std::fs::write(&pool, &bytes).unwrap();
    assert!(eng.open_pool(&pool, Task::WordCount).is_err(), "corrupt header must not open");
    assert!(fsck_pool(&pool).is_err(), "fsck must reject a corrupt header");
    let _ = std::fs::remove_file(&pool);
}

#[test]
fn truncated_pools_zero_extend_and_fsck_reports_it() {
    let pool = tmp_pool("trunc");
    let _ = std::fs::remove_file(&pool);
    let eng = engine(EngineConfig::ntadoc());
    let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
    let out = session.traverse().unwrap();
    drop(session);

    // Chop the file mid-data (simulating an interrupted copy or a hole
    // at the tail); the header stays intact.
    let full = std::fs::metadata(&pool).unwrap().len();
    let cut = POOL_DATA_AT + (full - POOL_DATA_AT) / 3;
    let f = std::fs::OpenOptions::new().write(true).open(&pool).unwrap();
    f.set_len(cut).unwrap();
    drop(f);

    let report = fsck_pool(&pool).unwrap();
    assert!(report.truncated, "fsck must flag the short file");
    assert_eq!(report.file_len, cut);

    // Reopen zero-extends the missing tail and the deterministic init
    // rebuilds everything the truncation destroyed.
    let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
    assert_eq!(session.traverse().unwrap(), out, "truncated pool diverged after reopen");
    let _ = std::fs::remove_file(&pool);
}

#[test]
fn mmap_backend_pool_lifecycle_matches_file_backend() {
    // The memory-mapped backend must be observationally identical to the
    // write()-based one: same output, same virtual cost, same on-disk
    // verification, across create → run → reopen.
    let pool_f = tmp_pool("mmap-vs-file-f");
    let pool_m = tmp_pool("mmap-vs-file-m");
    for p in [&pool_f, &pool_m] {
        let _ = std::fs::remove_file(p);
    }
    let eng_f = engine_on(EngineConfig::ntadoc(), PoolBackend::File);
    let eng_m = engine_on(EngineConfig::ntadoc(), PoolBackend::Mmap);

    let mut sf = eng_f.open_pool(&pool_f, Task::WordCount).unwrap();
    let mut sm = eng_m.open_pool(&pool_m, Task::WordCount).unwrap();
    let out_f = sf.traverse().unwrap();
    let out_m = sm.traverse().unwrap();
    assert_eq!(out_f, out_m, "mmap backend diverged from file backend");
    assert_eq!(
        sf.sim_device().stats().virtual_ns,
        sm.sim_device().stats().virtual_ns,
        "mmap backend must charge the same virtual time"
    );
    // (No byte-verify here: mid-session, lines written but never
    // persisted are still volatile on the twin, so file-vs-twin
    // comparison is only meaningful at crash/recovery points — the
    // crash sweeps assert it there. What must hold at any point is that
    // the two backends mirror identically, checked below.)
    drop(sm);
    drop(sf);

    // The two pool files are byte-identical and both fsck clean.
    assert_eq!(
        std::fs::read(&pool_f).unwrap(),
        std::fs::read(&pool_m).unwrap(),
        "the two backends must write byte-identical pool files"
    );
    assert!(fsck_pool(&pool_m).unwrap().recoverable());

    // Reopen on the mmap backend converges like the file backend does.
    let mut sm = eng_m.open_pool(&pool_m, Task::WordCount).unwrap();
    assert_eq!(sm.traverse().unwrap(), out_f, "mmap reopen diverged");
    for p in [&pool_f, &pool_m] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn pool_files_are_interchangeable_between_backends() {
    // A pool written by one backend is just a file: the other backend
    // must open it and produce the same answers.
    let pool = tmp_pool("interop");
    for (create, reopen) in
        [(PoolBackend::File, PoolBackend::Mmap), (PoolBackend::Mmap, PoolBackend::File)]
    {
        let _ = std::fs::remove_file(&pool);
        let eng = engine_on(EngineConfig::ntadoc(), create);
        let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
        let out = session.traverse().unwrap();
        drop(session);
        drop(eng);

        let eng = engine_on(EngineConfig::ntadoc(), reopen);
        let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
        assert_eq!(
            session.traverse().unwrap(),
            out,
            "pool created on {create:?} diverged when reopened on {reopen:?}"
        );
    }
    let _ = std::fs::remove_file(&pool);
}

#[test]
fn host_crash_after_acknowledged_run_preserves_the_published_snapshot() {
    // The durability contract behind satellite 1: the engine acknowledges
    // a run by sealing `publish_snapshot`, so even if the host dies right
    // after — losing every write the page cache still held — the
    // published snapshot must be on disk and the reopen must converge.
    for backend in [PoolBackend::File, PoolBackend::Mmap] {
        for (cfg, label) in
            [(EngineConfig::ntadoc(), "phase"), (EngineConfig::ntadoc_oplevel(), "op")]
        {
            let pool = tmp_pool(&format!("hostcrash-ack-{label}-{backend:?}"));
            let _ = std::fs::remove_file(&pool);
            let eng = engine_on(cfg.clone(), backend);
            let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
            let out = session.traverse().unwrap();
            let published = session.backend().published_snapshot();
            assert_ne!(published, 0, "{label} [{backend:?}]: run must publish a snapshot");

            // Worst case: *every* unsynced write dies with the host.
            let report = session.pool_file().unwrap().host_crash_lose_all();
            drop(session);

            let fsck = fsck_pool(&pool)
                .unwrap_or_else(|e| panic!("{label} [{backend:?}]: fsck after host crash: {e}"));
            assert_eq!(
                fsck.header.snapshot, published,
                "{label} [{backend:?}]: acknowledged publish lost (crash lost {} ranges)",
                report.lost
            );
            assert!(fsck.recoverable());

            let eng = engine_on(cfg.clone(), backend);
            let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
            assert_eq!(
                session.traverse().unwrap(),
                out,
                "{label} [{backend:?}]: acknowledged run diverged after host crash"
            );
            let _ = std::fs::remove_file(&pool);
        }
    }
}

#[test]
fn host_crash_mid_run_with_partial_loss_still_recovers() {
    // Process crash + torn lines + a seeded partial loss of unsynced file
    // ranges: the sealed undo log survives by construction, so the reopen
    // path must roll back and converge on both durable backends.
    let seed: u64 = 0x5EA1;
    for backend in [PoolBackend::File, PoolBackend::Mmap] {
        let pool = tmp_pool(&format!("hostcrash-mid-{backend:?}"));
        let _ = std::fs::remove_file(&pool);
        let mut clean_engine = engine(EngineConfig::ntadoc_oplevel());
        let clean = clean_engine.run(Task::WordCount).unwrap();

        let eng = engine_on(EngineConfig::ntadoc_oplevel(), backend);
        let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
        session.sim_device().trip_after_persists(40);
        let attempt = catch_unwind(AssertUnwindSafe(|| session.traverse()));
        session.sim_device().clear_trip();
        let payload = attempt.expect_err("the armed crash must fire");
        assert!(panic_is_injected_crash(&*payload));
        session.crash_torn(seed);
        let report = session.pool_file().unwrap().host_crash(seed);
        drop(session);
        drop(eng);

        let fsck = fsck_pool(&pool)
            .unwrap_or_else(|e| panic!("[{backend:?}] fsck after mid-run host crash: {e}"));
        assert!(
            fsck.recoverable(),
            "[{backend:?}] host crash (kept {}, lost {}) left an unrecoverable pool",
            report.kept,
            report.lost
        );

        let eng = engine_on(EngineConfig::ntadoc_oplevel(), backend);
        let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
        assert_eq!(
            session.traverse().unwrap(),
            clean,
            "[{backend:?}] mid-run host crash recovery diverged (kept {}, lost {})",
            report.kept,
            report.lost
        );
        let _ = std::fs::remove_file(&pool);
    }
}

#[test]
fn capacity_doubling_recreates_the_pool_file() {
    // An engine whose first capacity estimate is too small must retry
    // with a bigger file, and the final file's header must carry the
    // capacity that actually fit (not the failed first guess).
    let pool = tmp_pool("doubling");
    let _ = std::fs::remove_file(&pool);
    let eng = engine(EngineConfig::ntadoc());
    let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
    session.traverse().unwrap();
    let file = session.pool_file().unwrap();
    assert_eq!(
        file.header().layout.capacity,
        file.twin().capacity(),
        "header capacity must match the device the session actually ran on"
    );
    assert_eq!(
        std::fs::metadata(&pool).unwrap().len(),
        POOL_DATA_AT + file.header().layout.capacity,
        "file length must cover header + full data region"
    );
    let _ = std::fs::remove_file(&pool);
}
