//! File-backed pool lifecycle: create, clean shutdown, reopen, torn-commit
//! recovery, header validation, truncation robustness, and `fsck`.
//!
//! Everything here goes through `Engine::open_pool`, so the pool files on
//! disk are the real product of the engine's init/traversal path — the
//! tests then corrupt, truncate, or tear those files and assert the
//! reopen path behaves exactly as §IV-E recovery promises.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use ntadoc_repro::{
    compress_corpus, fsck_pool, panic_is_injected_crash, Compressed, DeviceProfile, Engine,
    EngineConfig, PmemError, Task, TokenizerConfig, POOL_DATA_AT,
};

fn corpus() -> Compressed {
    let files = vec![
        ("a".to_string(), "one two three one two four five one".repeat(15)),
        ("b".to_string(), "one two three six seven two".repeat(15)),
    ];
    compress_corpus(&files, &TokenizerConfig::default())
}

fn tmp_pool(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ntadoc-poolfile-{}-{name}.ntdp", std::process::id()))
}

fn engine(cfg: EngineConfig) -> Engine {
    Engine::builder(corpus()).config(cfg).build().unwrap()
}

#[test]
fn create_run_and_reopen_after_clean_shutdown_agree() {
    let pool = tmp_pool("clean");
    let _ = std::fs::remove_file(&pool);
    let eng = engine(EngineConfig::ntadoc());

    let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
    assert!(session.pool_file().is_some(), "open_pool must attach a file backend");
    let first = session.traverse().unwrap();
    let first_ns = session.sim_device().stats().virtual_ns;
    drop(session);
    assert!(pool.exists(), "the pool file must persist past the session");

    // Reopen: header is validated, the durable image loads, init re-runs
    // deterministically — same output, same virtual cost as a fresh run.
    let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
    let second = session.traverse().unwrap();
    assert_eq!(first, second, "reopened pool diverged from the original run");
    assert_eq!(
        first_ns,
        session.sim_device().stats().virtual_ns,
        "reopen changed the virtual cost of an identical run"
    );
    let _ = std::fs::remove_file(&pool);
}

#[test]
fn in_memory_sessions_have_no_file_backend() {
    let eng = engine(EngineConfig::ntadoc());
    let session = eng.session(Task::WordCount).unwrap();
    assert!(session.pool_file().is_none());
}

#[test]
fn open_pool_rejects_volatile_profiles() {
    let pool = tmp_pool("volatile");
    let _ = std::fs::remove_file(&pool);
    let eng = Engine::builder(corpus())
        .config(EngineConfig::ntadoc())
        .profile(DeviceProfile::dram())
        .build()
        .unwrap();
    match eng.open_pool(&pool, Task::WordCount) {
        Err(PmemError::Unsupported(_)) => {}
        Err(e) => panic!("expected Unsupported for a volatile profile, got {e}"),
        Ok(_) => panic!("a volatile profile must not open a file-backed pool"),
    }
    assert!(!pool.exists(), "a rejected open must not leave a file behind");
}

#[test]
fn reopen_after_torn_commit_rolls_back_and_converges() {
    let pool = tmp_pool("torn");
    let _ = std::fs::remove_file(&pool);
    let eng = engine(EngineConfig::ntadoc_oplevel());
    let mut clean_engine = engine(EngineConfig::ntadoc_oplevel());
    let clean = clean_engine.run(Task::WordCount).unwrap();

    // Crash mid-traversal with an open undo-log transaction, tear the
    // on-disk bytes, and abandon the session entirely.
    let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
    session.sim_device().trip_after_persists(40);
    let attempt = catch_unwind(AssertUnwindSafe(|| session.traverse()));
    session.sim_device().clear_trip();
    let payload = attempt.expect_err("the armed crash must fire");
    assert!(panic_is_injected_crash(&*payload));
    session.crash_torn(0xDEADD0C);
    session.pool_file().unwrap().verify_file_matches_device().unwrap();
    drop(session);
    drop(eng);

    // fsck sees the open transaction before recovery touches the file.
    let report = fsck_pool(&pool).unwrap();
    assert!(report.recoverable(), "a torn pool must still be recoverable");

    // A brand-new engine reopens from nothing but the torn file: the
    // undo log rolls the open transaction back, init re-runs, and the
    // output converges to the crash-free result.
    let eng = engine(EngineConfig::ntadoc_oplevel());
    let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
    assert_eq!(session.traverse().unwrap(), clean, "torn-commit recovery diverged");

    // After the clean re-run the log is quiescent again.
    drop(session);
    let report = fsck_pool(&pool).unwrap();
    assert!(!report.log.needs_rollback(), "recovered pool still reports an open transaction");
    let _ = std::fs::remove_file(&pool);
}

#[test]
fn corrupt_headers_are_rejected_not_misread() {
    let pool = tmp_pool("header");
    let _ = std::fs::remove_file(&pool);
    let eng = engine(EngineConfig::ntadoc());
    drop(eng.open_pool(&pool, Task::WordCount).unwrap());

    // Flip one byte inside the sealed header region.
    let mut bytes = std::fs::read(&pool).unwrap();
    bytes[12] ^= 0xFF;
    std::fs::write(&pool, &bytes).unwrap();
    assert!(eng.open_pool(&pool, Task::WordCount).is_err(), "corrupt header must not open");
    assert!(fsck_pool(&pool).is_err(), "fsck must reject a corrupt header");
    let _ = std::fs::remove_file(&pool);
}

#[test]
fn truncated_pools_zero_extend_and_fsck_reports_it() {
    let pool = tmp_pool("trunc");
    let _ = std::fs::remove_file(&pool);
    let eng = engine(EngineConfig::ntadoc());
    let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
    let out = session.traverse().unwrap();
    drop(session);

    // Chop the file mid-data (simulating an interrupted copy or a hole
    // at the tail); the header stays intact.
    let full = std::fs::metadata(&pool).unwrap().len();
    let cut = POOL_DATA_AT + (full - POOL_DATA_AT) / 3;
    let f = std::fs::OpenOptions::new().write(true).open(&pool).unwrap();
    f.set_len(cut).unwrap();
    drop(f);

    let report = fsck_pool(&pool).unwrap();
    assert!(report.truncated, "fsck must flag the short file");
    assert_eq!(report.file_len, cut);

    // Reopen zero-extends the missing tail and the deterministic init
    // rebuilds everything the truncation destroyed.
    let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
    assert_eq!(session.traverse().unwrap(), out, "truncated pool diverged after reopen");
    let _ = std::fs::remove_file(&pool);
}

#[test]
fn capacity_doubling_recreates_the_pool_file() {
    // An engine whose first capacity estimate is too small must retry
    // with a bigger file, and the final file's header must carry the
    // capacity that actually fit (not the failed first guess).
    let pool = tmp_pool("doubling");
    let _ = std::fs::remove_file(&pool);
    let eng = engine(EngineConfig::ntadoc());
    let mut session = eng.open_pool(&pool, Task::WordCount).unwrap();
    session.traverse().unwrap();
    let file = session.pool_file().unwrap();
    assert_eq!(
        file.header().layout.capacity,
        file.twin().capacity(),
        "header capacity must match the device the session actually ran on"
    );
    assert_eq!(
        std::fs::metadata(&pool).unwrap().len(),
        POOL_DATA_AT + file.header().layout.capacity,
        "file length must cover header + full data region"
    );
    let _ = std::fs::remove_file(&pool);
}
