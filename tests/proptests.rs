//! Property-based tests over the whole stack: compression round-trips,
//! coarsening invariance, summation soundness, engine-vs-oracle count
//! equivalence, and the NVM hash table against a model.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use ntadoc_nstruct::PHashTable;
use ntadoc_pmem::{DeviceProfile, PmemPool, SimDevice};
use ntadoc_repro::{compress_corpus, Engine, EngineConfig, Grammar, Symbol, Task, TokenizerConfig};

/// Arbitrary small-alphabet token streams compress interestingly.
fn token_stream() -> impl Strategy<Value = Vec<u32>> {
    vec(0u32..12, 0..400)
}

/// Arbitrary corpora: 1-4 files of small-alphabet words.
fn corpus_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    vec(vec(0u32..15, 0..120), 1..4).prop_map(|files| {
        files
            .into_iter()
            .enumerate()
            .map(|(i, words)| {
                let text = words.iter().map(|w| format!("w{w}")).collect::<Vec<_>>().join(" ");
                (format!("f{i}"), text)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sequitur_round_trips(words in token_stream()) {
        let mut seq = ntadoc_grammar::Sequitur::new();
        for &w in &words {
            seq.push(Symbol::word(w));
        }
        let grammar = seq.into_grammar();
        let expanded: Vec<u32> =
            grammar.expand_symbols().iter().map(|x| x.payload()).collect();
        prop_assert_eq!(expanded, words);
        grammar.validate().unwrap();
    }

    #[test]
    fn repair_round_trips(words in token_stream()) {
        let syms: Vec<Symbol> = words.iter().map(|&w| Symbol::word(w)).collect();
        let g = ntadoc_grammar::repair(&syms, 2);
        let expanded: Vec<u32> =
            g.expand_symbols().iter().map(|x| x.payload()).collect();
        prop_assert_eq!(expanded, words);
        g.validate().unwrap();
    }

    #[test]
    fn engines_agree_on_repair_substrate(files in corpus_strategy()) {
        let comp = ntadoc_grammar::compress_corpus_repair(
            &files,
            &TokenizerConfig::default(),
            2,
        );
        if comp.grammar.stats().expanded_words == 0 {
            return Ok(());
        }
        let mut oracle: BTreeMap<String, u64> = BTreeMap::new();
        for (_, text) in &files {
            for w in text.split_whitespace() {
                *oracle.entry(w.to_string()).or_insert(0) += 1;
            }
        }
        let mut engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
        let out = engine.run(Task::WordCount).unwrap();
        prop_assert_eq!(out.as_word_counts().unwrap(), &oracle);
    }

    #[test]
    fn coarsening_preserves_expansion(words in token_stream(), min_exp in 0u64..40) {
        let mut seq = ntadoc_grammar::Sequitur::new();
        for &w in &words {
            seq.push(Symbol::word(w));
        }
        let g = seq.into_grammar();
        let c = g.coarsened(min_exp);
        prop_assert_eq!(c.expand_symbols(), g.expand_symbols());
        c.validate().unwrap();
    }

    #[test]
    fn summation_bounds_are_sound(words in token_stream()) {
        let mut seq = ntadoc_grammar::Sequitur::new();
        for &w in &words {
            seq.push(Symbol::word(w));
        }
        let g = seq.into_grammar().coarsened(4);
        let bounds = ntadoc::summation::upper_bounds(&g).bounds;
        // Actual distinct words per rule expansion must never exceed the
        // bound.
        fn expand(g: &Grammar, r: u32, out: &mut Vec<u32>) {
            for s in &g.rules[r as usize].symbols {
                if s.is_word() {
                    out.push(s.payload());
                } else if s.is_rule() {
                    expand(g, s.payload(), out);
                }
            }
        }
        for r in 0..g.rule_count() as u32 {
            let mut toks = Vec::new();
            expand(&g, r, &mut toks);
            toks.sort_unstable();
            toks.dedup();
            prop_assert!(bounds[r as usize] >= toks.len() as u64,
                "rule {} bound {} < {}", r, bounds[r as usize], toks.len());
        }
    }

    #[test]
    fn word_count_matches_oracle_on_arbitrary_corpora(files in corpus_strategy()) {
        let comp = compress_corpus(&files, &TokenizerConfig::default());
        if comp.grammar.stats().expanded_words == 0 {
            return Ok(());
        }
        let mut oracle: BTreeMap<String, u64> = BTreeMap::new();
        for (_, text) in &files {
            for w in text.split_whitespace() {
                *oracle.entry(w.to_string()).or_insert(0) += 1;
            }
        }
        let mut engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
        let out = engine.run(Task::WordCount).unwrap();
        prop_assert_eq!(out.as_word_counts().unwrap(), &oracle);
    }

    #[test]
    fn sequence_count_matches_oracle(files in corpus_strategy()) {
        let comp = compress_corpus(&files, &TokenizerConfig::default());
        let mut oracle: BTreeMap<Vec<String>, u64> = BTreeMap::new();
        for (_, text) in &files {
            let toks: Vec<&str> = text.split_whitespace().collect();
            for win in toks.windows(3) {
                *oracle
                    .entry(win.iter().map(|s| s.to_string()).collect())
                    .or_insert(0) += 1;
            }
        }
        if comp.grammar.stats().expanded_words == 0 {
            return Ok(());
        }
        let mut engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
        let out = engine.run(Task::SequenceCount).unwrap();
        prop_assert_eq!(out.as_sequence_counts().unwrap(), &oracle);
    }

    #[test]
    fn random_access_matches_expansion(
        files in corpus_strategy(),
        queries in vec((0usize..4, 0u64..200, 0usize..60), 1..12)
    ) {
        let comp = compress_corpus(&files, &TokenizerConfig::default());
        let expanded = comp.grammar.expand_files();
        let accessor = ntadoc::Accessor::new(
            &comp,
            ntadoc_repro::DeviceProfile::nvm_optane(),
        ).unwrap();
        for (fid, offset, len) in queries {
            let fid = fid % expanded.len();
            let got = accessor.extract_ids(fid, offset, len);
            let f = &expanded[fid];
            let from = (offset as usize).min(f.len());
            let to = (from + len).min(f.len());
            prop_assert_eq!(&got, &f[from..to], "file {} @ {}+{}", fid, offset, len);
        }
    }

    #[test]
    fn pvec_behaves_like_a_vec(ops in vec((0u8..3, 0u64..1000), 0..200)) {
        use ntadoc_nstruct::PVec;
        let dev = Arc::new(SimDevice::new(DeviceProfile::nvm_optane(), 1 << 22));
        let pool = Arc::new(PmemPool::over_whole(dev));
        let v: PVec<u64> = PVec::with_capacity(pool, 2).unwrap();
        let mut model: Vec<u64> = Vec::new();
        for (op, x) in ops {
            match op {
                0 => {
                    v.push(x).unwrap();
                    model.push(x);
                }
                1 if !model.is_empty() => {
                    let i = (x as usize) % model.len();
                    v.set(i, x + 1);
                    model[i] = x + 1;
                }
                _ if !model.is_empty() => {
                    let i = (x as usize) % model.len();
                    prop_assert_eq!(v.get(i), model[i]);
                }
                _ => {}
            }
        }
        prop_assert_eq!(v.to_vec(), model);
    }

    #[test]
    fn phash_behaves_like_a_map(ops in vec((0u64..64, 1u64..100), 0..300)) {
        let dev = Arc::new(SimDevice::new(DeviceProfile::nvm_optane(), 1 << 22));
        let pool = Arc::new(PmemPool::over_whole(dev));
        let table = PHashTable::with_expected(pool, 4, false).unwrap();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (k, v) in ops {
            table.add(k, v).unwrap();
            *model.entry(k).or_insert(0) += v;
        }
        for (k, v) in &model {
            prop_assert_eq!(table.get(*k), Some(*v));
        }
        prop_assert_eq!(table.len(), model.len());
        let mut entries = table.entries();
        entries.sort_unstable();
        let mut expect: Vec<(u64, u64)> = model.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(entries, expect);
    }

    #[test]
    fn device_survives_arbitrary_write_patterns(
        writes in vec((0u64..4000, 0u8..255), 0..200)
    ) {
        let dev = SimDevice::new(DeviceProfile::nvm_optane(), 4096);
        let mut model = vec![0u8; 4096];
        for (addr, byte) in writes {
            dev.write_bytes(addr, &[byte]);
            model[addr as usize] = byte;
        }
        let mut out = vec![0u8; 4096];
        dev.read_bytes(0, &mut out);
        prop_assert_eq!(out, model);
    }

    #[test]
    fn arbitrary_log_region_bytes_never_panic_recovery(
        garbage in vec(0u8..255, 0..512),
        at in 0u64..3500
    ) {
        use ntadoc_pmem::TxLog;
        let dev = Arc::new(SimDevice::new(DeviceProfile::nvm_optane(), 1 << 16));
        let log_at = 4096u64;
        dev.write_bytes(log_at + at, &garbage);
        let mut log = TxLog::new(dev.clone(), log_at, 4096);
        // Any verdict is fine; panicking or corrupting unrelated memory
        // is not. A post-recovery transaction must also work.
        let _ = log.recover();
        log.begin().unwrap();
        log.log_range(0, 32).unwrap();
        log.commit().unwrap();
    }

    #[test]
    fn arbitrary_image_bytes_never_panic_deserialization(
        garbage in vec(0u8..255, 0..600)
    ) {
        let _ = ntadoc_repro::deserialize_compressed(&garbage);
    }

    #[test]
    fn mutated_real_images_are_rejected_or_identical(
        files in corpus_strategy(),
        flip_at in 0usize..10000,
        flip_bit in 0u8..8
    ) {
        let comp = compress_corpus(&files, &TokenizerConfig::default());
        let mut image = ntadoc_repro::serialize_compressed(&comp).unwrap();
        let at = flip_at % image.len();
        image[at] ^= 1 << flip_bit;
        // Every single-bit flip lands inside the checksummed envelope, so
        // deserialization must reject it — never panic, never return a
        // silently different grammar.
        prop_assert!(ntadoc_repro::deserialize_compressed(&image).is_err(),
            "bit {} of byte {} flipped undetected", flip_bit, at);
    }

    #[test]
    fn torn_crash_always_preserves_fenced_data(
        vals in vec(1u64..1000, 1..40),
        seed in 0u64..10000
    ) {
        use ntadoc_repro::CrashMode;
        let dev = SimDevice::new(DeviceProfile::nvm_optane(), 1 << 16);
        for (i, v) in vals.iter().enumerate() {
            dev.write_u64(i as u64 * 8, *v);
        }
        dev.persist(0, vals.len() * 8);
        // More unfenced writes after the persist…
        for i in 0..vals.len() {
            dev.write_u64((100 + i as u64) * 8, 7);
            dev.flush((100 + i as u64) * 8, 8);
            // …flushed but NOT fenced: each independently survives or not.
        }
        dev.set_crash_mode(CrashMode::Torn { seed });
        dev.crash();
        // Whatever the seed did to the unfenced lines, fenced data is intact.
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(dev.read_u64(i as u64 * 8), *v, "fenced index {}", i);
        }
        for i in 0..vals.len() {
            let got = dev.read_u64((100 + i as u64) * 8);
            prop_assert!(got == 7 || got == 0, "torn line must be old or new, got {}", got);
        }
    }

    #[test]
    fn crash_preserves_exactly_the_persisted_prefix(
        vals in vec(0u64..1000, 1..50),
        persist_upto in 0usize..50
    ) {
        let dev = SimDevice::new(DeviceProfile::nvm_optane(), 1 << 16);
        let cut = persist_upto.min(vals.len());
        for (i, v) in vals.iter().enumerate() {
            dev.write_u64(i as u64 * 8, *v);
            if i + 1 == cut {
                dev.persist(0, cut * 8);
            }
        }
        dev.crash();
        for (i, v) in vals.iter().enumerate() {
            let read = dev.read_u64(i as u64 * 8);
            if i < cut {
                // Persisted prefix must survive...
                prop_assert_eq!(read, *v, "persisted index {}", i);
            } else {
                // ...anything after the persist point may or may not have
                // survived only if it shares a media line with persisted
                // data; standalone lines must be zero.
                let line = (i * 8) / 256;
                if cut == 0 || line > (cut * 8 - 1) / 256 {
                    prop_assert_eq!(read, 0, "unpersisted index {}", i);
                }
            }
        }
    }
}

// File-backed pools are more expensive per case (each creates, tears, and
// reopens a real file), so this block runs fewer cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn txlog_recovery_round_trips_identically_on_both_backends(
        writes in vec((0u64..64, 1u64..1000), 1..24),
        crash_after in 0usize..24,
        seed in 0u64..10000,
    ) {
        use ntadoc_repro::{FileDevice, PmemBackend, PoolLayout, TxLog};
        let layout = PoolLayout {
            capacity: 1 << 16,
            main_len: (1 << 16) - 8192,
            scratch_len: 4096,
            log_len: 4096,
        };
        let path = std::env::temp_dir()
            .join(format!("ntadoc-prop-txlog-{}.ntdp", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let sim_dev = Arc::new(SimDevice::new(DeviceProfile::nvm_optane(), 1 << 16));
        let sim: Arc<dyn PmemBackend> = sim_dev.clone();
        let file_dev = FileDevice::create(&path, DeviceProfile::nvm_optane(), layout).unwrap();
        let file: Arc<dyn PmemBackend> = file_dev.clone();
        let mut sim_log =
            TxLog::new(sim.clone(), layout.log_base(), layout.log_len as usize);
        let mut file_log =
            TxLog::new(file.clone(), layout.log_base(), layout.log_len as usize);

        // Identical transactional trace on both backends; the tx at
        // `crash_at` is torn open instead of committed.
        let crash_at = crash_after % writes.len();
        for (i, (slot, val)) in writes.iter().enumerate() {
            let addr = (slot % 64) * 8;
            for (log, dev) in [(&mut sim_log, &sim), (&mut file_log, &file)] {
                log.begin().unwrap();
                log.log_range(addr, 8).unwrap();
                dev.write_u64(addr, *val);
                if i != crash_at {
                    log.commit().unwrap();
                }
            }
            if i == crash_at {
                break;
            }
        }
        sim.crash_torn(seed);
        file.crash_torn(seed);
        // The torn on-disk bytes must match the file's twin exactly…
        file_dev.verify_file_matches_device().unwrap();
        // …and both backends must have torn identically.
        prop_assert_eq!(
            sim_dev.peek(0, 1 << 16),
            file_dev.twin().peek(0, 1 << 16),
            "post-crash pools diverge (torn seed {})", seed
        );

        // Recovery rolls the open transaction back the same way on both.
        sim_log.recover().unwrap();
        file_log.recover().unwrap();
        prop_assert_eq!(
            sim_dev.peek(0, 1 << 16),
            file_dev.twin().peek(0, 1 << 16),
            "post-recovery pools diverge (torn seed {})", seed
        );
        prop_assert_eq!(sim.stats().virtual_ns, file.stats().virtual_ns);

        // Reopening from nothing but the file reaches the same state, and
        // a second recovery pass is a no-op (recovery is idempotent).
        drop(file_log);
        drop(file);
        drop(file_dev);
        let reopened = FileDevice::open(&path, DeviceProfile::nvm_optane()).unwrap();
        let backend: Arc<dyn PmemBackend> = reopened.clone();
        let mut log = TxLog::new(backend, layout.log_base(), layout.log_len as usize);
        log.recover().unwrap();
        prop_assert_eq!(
            sim_dev.peek(0, 1 << 16),
            reopened.twin().peek(0, 1 << 16),
            "reopened pool diverges from the sim (torn seed {})", seed
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_pools_round_trip_and_recover_on_arbitrary_corpora(
        files in corpus_strategy(),
        point in 0u64..200,
        seed in 0u64..10000,
    ) {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use ntadoc_repro::panic_is_injected_crash;
        let comp = compress_corpus(&files, &TokenizerConfig::default());
        if comp.grammar.stats().expanded_words == 0 {
            return Ok(());
        }
        let path = std::env::temp_dir()
            .join(format!("ntadoc-prop-pool-{}.ntdp", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = EngineConfig::ntadoc_oplevel();
        let mut clean_engine =
            Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();
        let clean = clean_engine.run(Task::WordCount).unwrap();
        let engine = Engine::builder(comp.clone()).config(cfg.clone()).build().unwrap();

        // Create + run + clean shutdown.
        let mut session = engine.open_pool(&path, Task::WordCount).unwrap();
        prop_assert_eq!(&session.traverse().unwrap(), &clean);
        drop(session);

        // Reopen after clean shutdown: the checksummed header validates
        // and the deterministic re-init converges.
        let mut session = engine.open_pool(&path, Task::WordCount).unwrap();
        prop_assert_eq!(&session.traverse().unwrap(), &clean);

        // Tear an arbitrary persist point (if the workload reaches it)
        // and recover from nothing but the on-disk bytes.
        session.sim_device().trip_after_persists(point);
        let attempt = catch_unwind(AssertUnwindSafe(|| session.traverse()));
        session.sim_device().clear_trip();
        if let Err(payload) = attempt {
            prop_assert!(
                panic_is_injected_crash(&*payload),
                "a non-injected panic escaped (torn seed {})", seed
            );
            session.crash_torn(seed);
            session.pool_file().unwrap().verify_file_matches_device().unwrap();
            drop(session);
            let mut session = engine.open_pool(&path, Task::WordCount).unwrap();
            prop_assert_eq!(&session.traverse().unwrap(), &clean);
        }
        let _ = std::fs::remove_file(&path);
    }
}
