//! Crash/recovery integration tests across the whole stack (§IV-E).

use ntadoc_repro::{
    compress_corpus, Compressed, Engine, EngineConfig, Task, TokenizerConfig,
};

fn corpus() -> Compressed {
    let files = vec![
        ("a".to_string(), "alpha beta gamma alpha beta delta epsilon".repeat(50)),
        ("b".to_string(), "alpha beta gamma zeta eta theta".repeat(50)),
        ("c".to_string(), "iota kappa alpha beta gamma lambda".repeat(50)),
    ];
    compress_corpus(&files, &TokenizerConfig::default())
}

#[test]
fn phase_level_crash_during_traversal_recovers_by_rerunning() {
    let comp = corpus();
    for task in Task::ALL {
        let engine = Engine::on_nvm(&comp, EngineConfig::ntadoc()).unwrap();
        let mut session = engine.start(task).unwrap();
        // Power failure mid-run: everything not phase-persisted is lost.
        session.crash();
        session.recover().unwrap();
        let recovered = session.traverse().unwrap_or_else(|e| panic!("{task}: {e}"));
        let mut clean_engine = Engine::on_nvm(&comp, EngineConfig::ntadoc()).unwrap();
        let clean = clean_engine.run(task).unwrap();
        assert_eq!(recovered, clean, "{task}: post-crash output differs");
    }
}

#[test]
fn traversal_is_rerunnable_even_without_crash() {
    // Re-running the traversal phase must be idempotent (weights are
    // reset per run) — this is what recovery relies on.
    let comp = corpus();
    let engine = Engine::on_nvm(&comp, EngineConfig::ntadoc()).unwrap();
    let mut session = engine.start(Task::WordCount).unwrap();
    let first = session.traverse().unwrap();
    let second = session.traverse().unwrap();
    assert_eq!(first, second, "second traversal must not double-count");
}

#[test]
fn operation_level_crash_recovers() {
    let comp = corpus();
    for task in [Task::WordCount, Task::InvertedIndex] {
        let engine = Engine::on_nvm(&comp, EngineConfig::ntadoc_oplevel()).unwrap();
        let mut session = engine.start(task).unwrap();
        session.crash();
        session.recover().unwrap(); // rolls back any in-flight transaction
        let recovered = session.traverse().unwrap();
        let mut clean_engine = Engine::on_nvm(&comp, EngineConfig::ntadoc_oplevel()).unwrap();
        let clean = clean_engine.run(task).unwrap();
        assert_eq!(recovered, clean, "{task}: op-level post-crash output differs");
    }
}

#[test]
fn multiple_crashes_in_a_row_still_recover() {
    let comp = corpus();
    let engine = Engine::on_nvm(&comp, EngineConfig::ntadoc()).unwrap();
    let mut session = engine.start(Task::Sort).unwrap();
    for _ in 0..3 {
        session.crash();
        session.recover().unwrap();
    }
    let out = session.traverse().unwrap();
    let mut clean_engine = Engine::on_nvm(&comp, EngineConfig::ntadoc()).unwrap();
    assert_eq!(out, clean_engine.run(Task::Sort).unwrap());
}

#[test]
fn dram_engine_does_not_survive_crash() {
    // Sanity check of the volatility model: DRAM loses everything, so the
    // traversal after a crash must fail or produce garbage — here we just
    // assert the device contents were wiped.
    use ntadoc_repro::{DeviceProfile, SimDevice};
    let dev = SimDevice::new(DeviceProfile::dram(), 4096);
    dev.write_u64(0, 42);
    dev.persist(0, 8);
    dev.crash();
    assert_eq!(dev.read_u64(0), 0);
}
