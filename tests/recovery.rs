//! Crash/recovery integration tests across the whole stack (§IV-E).
//!
//! Recovery here runs under the *torn-write* crash model by default:
//! flushed-but-unfenced lines independently survive or revert under a
//! seeded RNG, which is strictly more adversarial than the deterministic
//! rewind model (real NVM guarantees only 8-byte atomicity and no
//! ordering between unfenced lines).

use ntadoc_repro::{
    compress_corpus, Compressed, CrashMode, Engine, EngineConfig, RetryPolicy, Task,
    TokenizerConfig,
};

fn corpus() -> Compressed {
    let files = vec![
        ("a".to_string(), "alpha beta gamma alpha beta delta epsilon".repeat(50)),
        ("b".to_string(), "alpha beta gamma zeta eta theta".repeat(50)),
        ("c".to_string(), "iota kappa alpha beta gamma lambda".repeat(50)),
    ];
    compress_corpus(&files, &TokenizerConfig::default())
}

#[test]
fn phase_level_crash_during_traversal_recovers_by_rerunning() {
    let comp = corpus();
    for task in Task::ALL {
        let engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
        let mut session = engine.session(task).unwrap();
        // Torn power failure mid-run: everything not phase-persisted is
        // lost or arbitrarily shredded across unfenced lines.
        session.crash_torn(0xD15EA5E);
        session.recover().unwrap();
        let recovered = session.traverse().unwrap_or_else(|e| panic!("{task}: {e}"));
        let mut clean_engine =
            Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
        let clean = clean_engine.run(task).unwrap();
        assert_eq!(recovered, clean, "{task}: post-crash output differs");
    }
}

#[test]
fn traversal_is_rerunnable_even_without_crash() {
    // Re-running the traversal phase must be idempotent (weights are
    // reset per run) — this is what recovery relies on.
    let comp = corpus();
    let engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let mut session = engine.session(Task::WordCount).unwrap();
    let first = session.traverse().unwrap();
    let second = session.traverse().unwrap();
    assert_eq!(first, second, "second traversal must not double-count");
}

#[test]
fn operation_level_crash_recovers() {
    let comp = corpus();
    for task in [Task::WordCount, Task::InvertedIndex] {
        let engine =
            Engine::builder(comp.clone()).config(EngineConfig::ntadoc_oplevel()).build().unwrap();
        let mut session = engine.session(task).unwrap();
        session.crash_torn(0xF00D);
        session.recover().unwrap(); // rolls back any in-flight transaction
        let recovered = session.traverse().unwrap();
        let mut clean_engine =
            Engine::builder(comp.clone()).config(EngineConfig::ntadoc_oplevel()).build().unwrap();
        let clean = clean_engine.run(task).unwrap();
        assert_eq!(recovered, clean, "{task}: op-level post-crash output differs");
    }
}

#[test]
fn multiple_torn_crashes_in_a_row_still_recover() {
    let comp = corpus();
    let engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let mut session = engine.session(Task::Sort).unwrap();
    for seed in 0..3u64 {
        session.crash_torn(seed);
        session.recover().unwrap();
    }
    let out = session.traverse().unwrap();
    let mut clean_engine =
        Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    assert_eq!(out, clean_engine.run(Task::Sort).unwrap());
}

#[test]
fn configured_torn_mode_applies_to_plain_crash() {
    // Setting the mode once makes every subsequent `crash()` torn — the
    // recovery contract must hold either way.
    let comp = corpus();
    let engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let mut session = engine.session(Task::WordCount).unwrap();
    session.sim_device().set_crash_mode(CrashMode::Torn { seed: 31337 });
    session.crash();
    session.recover().unwrap();
    let out = session.traverse().unwrap();
    let mut clean_engine =
        Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    assert_eq!(out, clean_engine.run(Task::WordCount).unwrap());
}

#[test]
fn transient_write_faults_are_absorbed_and_charged() {
    // Faults within the device's bounded retry budget are invisible to the
    // engine apart from the virtual-time and retry-counter cost.
    let comp = corpus();
    let engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let mut session = engine.session(Task::WordCount).unwrap();
    let cap = session.sim_device().capacity();
    for i in 1..8u64 {
        session.sim_device().inject_transient_write_fault(cap / 8 * i, 2);
    }
    let out = session.traverse().unwrap();
    let mut clean_engine =
        Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    assert_eq!(out, clean_engine.run(Task::WordCount).unwrap());
    let stats = session.sim_device().stats();
    assert!(stats.media_retries > 0, "at least one injected fault must have been hit");
}

#[test]
fn retrying_engine_matches_run_when_healthy() {
    // A retry policy must be a pure superset of the default on a healthy
    // device: same output, and a report is produced.
    let comp = corpus();
    let mut a = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let mut b = Engine::builder(comp.clone())
        .config(EngineConfig::ntadoc())
        .retry(RetryPolicy::MediaRetries(3))
        .build()
        .unwrap();
    let clean = a.run(Task::WordCount).unwrap();
    let resilient = b.run(Task::WordCount).unwrap();
    assert_eq!(clean, resilient);
    assert!(b.last_report.is_some());
}

#[test]
fn uncorrectable_faults_recover_by_phase_rerun_or_fail_cleanly() {
    // An uncorrectable read fault heals when the line is rewritten, so the
    // engine-level fallback (recover + phase re-run) must converge when the
    // fault sits in a region the traversal rewrites.
    let comp = corpus();
    let mut clean_engine =
        Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let clean = clean_engine.run(Task::WordCount).unwrap();

    let engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    let mut session = engine.session(Task::WordCount).unwrap();
    // Sprinkle read faults over the upper (result/scratch) half; lines the
    // traversal never rewrites simply keep their fault and are not read.
    let cap = session.sim_device().capacity();
    for i in 0..16u64 {
        session.sim_device().inject_read_fault(cap / 2 + (cap / 32) * i);
    }
    let mut out = session.traverse();
    let mut attempts = 0;
    while out.is_err() && attempts < 8 {
        session.recover().unwrap();
        out = session.traverse();
        attempts += 1;
    }
    session.sim_device().clear_faults();
    match out {
        Ok(out) => assert_eq!(out, clean),
        // A fault may sit on a line the traversal reads but never
        // rewrites (e.g. scratch metadata); then the error must be a
        // clean MediaError, never a panic or a wrong result.
        Err(e) => assert!(matches!(e, ntadoc_repro::PmemError::MediaError { .. }), "{e}"),
    }
}

#[test]
fn dram_engine_does_not_survive_crash() {
    // Sanity check of the volatility model: DRAM loses everything, so the
    // traversal after a crash must fail or produce garbage — here we just
    // assert the device contents were wiped.
    use ntadoc_repro::{DeviceProfile, SimDevice};
    let dev = SimDevice::new(DeviceProfile::dram(), 4096);
    dev.write_u64(0, 42);
    dev.persist(0, 8);
    dev.crash();
    assert_eq!(dev.read_u64(0), 0);
}
