//! Schema stability: a checked-in golden report document from the v2
//! schema must keep deserializing, and live reports must keep producing
//! documents the golden consumer shape can read. If a rename, removal,
//! or retype of a report member breaks this test, bump
//! `REPORT_VERSION` and regenerate the fixture deliberately.

use ntadoc_repro::{
    compress_corpus, Engine, EngineConfig, Json, RunReport, Task, TokenizerConfig,
    METRIC_DEVICE_PEAK, METRIC_DRAM_PEAK, METRIC_HIT_RATE, REPORT_VERSION,
};

const GOLDEN: &str = include_str!("fixtures/run_report_v2.json");

#[test]
fn golden_fixture_deserializes() {
    let json = Json::parse(GOLDEN).expect("fixture is valid JSON");
    let rep = RunReport::from_json(&json).expect("fixture deserializes");
    assert_eq!(rep.version, REPORT_VERSION);
    assert_eq!(rep.task, Task::WordCount);
    assert_eq!(rep.engine, "N-TADOC");
    assert_eq!(rep.device, "NVM");
    // The derived accessors read the span tree and metric registry the
    // same way for a parsed document as for a live run.
    assert_eq!(rep.total_ns(), 1500);
    assert_eq!(rep.init_ns(), 1000);
    assert_eq!(rep.traversal_ns(), 500);
    assert_eq!(rep.spans.span_count(), 4);
    assert_eq!(rep.spans.find("parse").unwrap().virtual_ns, 400);
    assert_eq!(rep.metric_f64(METRIC_HIT_RATE), Some(0.75));
    assert_eq!(rep.metric_f64(METRIC_DRAM_PEAK), Some(8192.0));
    assert_eq!(rep.metric_u64("retry.media_attempts"), Some(0));
    // Per-shard contention counters from the sharded read path.
    assert_eq!(rep.metric_u64("contention.shard00.reads"), Some(5));
    assert_eq!(rep.metric_u64("contention.shard00.line_misses"), Some(3));
    assert_eq!(rep.metric_u64("contention.shard15.reads"), Some(0));
    assert_eq!(rep.stats.reads, 120);
    assert_eq!(rep.wear_top, vec![(0, 6), (64, 3), (128, 1)]);
}

#[test]
fn golden_fixture_round_trips_bit_identically() {
    let json = Json::parse(GOLDEN).expect("fixture is valid JSON");
    let rep = RunReport::from_json(&json).unwrap();
    assert_eq!(rep.to_json(), json, "serializer drifted from the checked-in schema");
}

#[test]
fn live_reports_match_the_golden_shape() {
    let files = vec![
        ("a".to_string(), "the quick brown fox jumps over the lazy dog".repeat(20)),
        ("b".to_string(), "pack my box with five dozen liquor jugs".repeat(20)),
    ];
    let comp = compress_corpus(&files, &TokenizerConfig::default());
    let mut engine = Engine::builder(comp).config(EngineConfig::ntadoc()).build().unwrap();
    engine.run(Task::WordCount).unwrap();
    let rep = engine.last_report.as_ref().unwrap();
    let doc = rep.to_json();
    // Every member the golden fixture promises must be present, with the
    // same types, in a freshly produced document.
    let golden = Json::parse(GOLDEN).unwrap();
    for key in golden.as_obj().unwrap().keys() {
        assert!(doc.get(key).is_some(), "live report lost member `{key}`");
    }
    assert_eq!(doc.get("version").and_then(Json::as_u64), Some(REPORT_VERSION as u64));
    let spans = doc.get("spans").expect("span tree");
    assert_eq!(spans.get("name").and_then(Json::as_str), Some("run"));
    assert!(spans.get("children").and_then(Json::as_arr).is_some_and(|c| !c.is_empty()));
    for metric in [METRIC_DRAM_PEAK, METRIC_DEVICE_PEAK, METRIC_HIT_RATE] {
        assert!(
            doc.get("metrics").and_then(|m| m.get(metric)).is_some(),
            "live report lost metric `{metric}`"
        );
    }
    // One pair of contention counters per read shard.
    for i in 0..16 {
        for kind in ["reads", "line_misses"] {
            let metric = format!("contention.shard{i:02}.{kind}");
            assert!(
                doc.get("metrics").and_then(|m| m.get(&metric)).is_some(),
                "live report lost metric `{metric}`"
            );
        }
    }
}
