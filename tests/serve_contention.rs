//! The sharded, contention-free read path must not change accounting:
//! concurrent serve sessions hammering disjoint and overlapping line
//! ranges produce exactly the per-shard totals of the serial run, dirty
//! lines keep their write-backs through concurrent reads and poison
//! recovery, and optimistic readers never observe a torn copy.

use ntadoc_pmem::par::{self, join_deferred, par_map_timed};
use ntadoc_pmem::{with_deferred_charges, DeferredCharges, DeviceProfile, SimDevice};
use ntadoc_repro::{compress_corpus, Engine, EngineConfig, Query, Task, TenantId, TokenizerConfig};

fn nvm(cap: usize) -> SimDevice {
    SimDevice::new(DeviceProfile::nvm_optane(), cap)
}

/// Run `sessions` concurrent read-only "sessions" against `dev`: each
/// streams over its own disjoint range, then over one shared range every
/// session overlaps. Returns the device's per-shard totals after the
/// barrier join.
fn hammer(dev: &SimDevice, sessions: usize, threads: usize) -> Vec<ntadoc_pmem::ReadShardStats> {
    let items: Vec<u64> = (0..sessions as u64).collect();
    par::with_threads(threads, || {
        let (_, charges) = par_map_timed(&items, |_, &i| {
            let mut buf = vec![0u8; 2048];
            // Disjoint range: sessions never share these lines.
            dev.read_bytes(i * 16 * 1024, &mut buf);
            // Overlapping range: every session reads the same lines.
            dev.read_bytes(7 * 1024, &mut buf);
            // Scattered small reads across many shards.
            for k in 0..8u64 {
                let mut small = [0u8; 64];
                dev.read_bytes((i * 8 + k) * 1280, &mut small);
            }
        });
        join_deferred(dev, &charges);
    });
    dev.read_shard_stats()
}

#[test]
fn per_shard_totals_equal_the_serial_run() {
    let serial = hammer(&nvm(1 << 20), 24, 1);
    assert!(serial.iter().map(|s| s.reads).sum::<u64>() > 0);
    for threads in [2, 4, 8] {
        let parallel = hammer(&nvm(1 << 20), 24, threads);
        assert_eq!(parallel, serial, "per-shard totals diverged at {threads} threads");
    }
}

#[test]
fn whole_run_stats_equal_the_serial_run() {
    let d1 = nvm(1 << 20);
    hammer(&d1, 24, 1);
    let serial = d1.stats();
    for threads in [2, 8] {
        let dn = nvm(1 << 20);
        hammer(&dn, 24, threads);
        assert_eq!(dn.stats(), serial, "AccessStats diverged at {threads} threads");
    }
}

#[test]
fn optimistic_readers_never_observe_a_torn_copy() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let dev = nvm(1 << 16);
    // One writer repaints a region with a uniform byte; readers copy it
    // through the optimistic path and must always see a uniform buffer —
    // the per-shard seqlock forces a retry whenever a writer interleaves.
    let region = 4096u64;
    let len = 1024usize;
    dev.poke(region, &vec![0u8; len]);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            for round in 0u8..200 {
                dev.write_bytes(region, &vec![round; len]);
            }
            stop.store(true, Ordering::Relaxed);
        });
        for _ in 0..3 {
            s.spawn(|| {
                let sink = DeferredCharges::new();
                with_deferred_charges(&sink, || {
                    let mut buf = vec![0u8; len];
                    while !stop.load(Ordering::Relaxed) {
                        dev.read_bytes(region, &mut buf);
                        let first = buf[0];
                        assert!(
                            buf.iter().all(|&b| b == first),
                            "torn read: mixed bytes in one optimistic copy"
                        );
                    }
                });
            });
        }
    });
}

#[test]
fn dirty_line_write_backs_survive_concurrent_reads() {
    let run = |threads: usize| {
        let dev = nvm(1 << 20);
        // Dirty 16 distinct lines (256-byte lines on the NVM profile).
        for line in 0..16u64 {
            dev.write_u64(line * 256, line);
        }
        let before = dev.stats();
        // Concurrent deferred reads over those same lines must not touch
        // cache residency or dirtiness.
        let items: Vec<u64> = (0..16).collect();
        par::with_threads(threads, || {
            let (_, charges) = par_map_timed(&items, |_, &line| {
                let mut buf = [0u8; 256];
                dev.read_bytes(line * 256, &mut buf);
            });
            join_deferred(&dev, &charges);
        });
        // Every dirty line still owes exactly one write-back at flush.
        for line in 0..16u64 {
            dev.flush(line * 256, 256);
        }
        dev.fence();
        dev.stats().write_backs - before.write_backs
    };
    let serial = run(1);
    assert_eq!(serial, 16, "each dirtied line must write back once");
    for threads in [4, 8] {
        assert_eq!(run(threads), serial, "write-backs lost at {threads} threads");
    }
}

#[test]
fn poison_recovery_resets_cache_residency_without_losing_write_backs() {
    let dev = nvm(1 << 16);
    // Dirty a line and make it cache-resident.
    dev.write_u64(0, 42);
    let before = dev.stats();
    assert_eq!(dev.poison_heals(), 0);
    // Panic while holding the state lock: `peek` indexes the plane under
    // the exclusive guard, so an out-of-range peek poisons the lock.
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        dev.peek(u64::MAX / 2, 8);
    }));
    assert!(unwound.is_err(), "out-of-range peek must panic");
    // The next lock acquisition heals: residency is rebuilt cold rather
    // than trusting a possibly half-written cache entry, and the dirty
    // line's write-back is charged instead of dropped.
    let after = dev.stats();
    assert_eq!(dev.poison_heals(), 1, "poisoned lock must be healed exactly once");
    assert_eq!(
        after.write_backs,
        before.write_backs + 1,
        "the dirty line's write-back must be charged during healing"
    );
    // Data is intact and the device stays fully usable.
    assert_eq!(dev.read_u64(0), 42);
    let miss_delta = dev.stats().line_misses - after.line_misses;
    assert!(miss_delta >= 1, "healed cache must start cold (read should miss)");
}

#[test]
fn serve_sessions_report_identical_shard_totals_for_any_worker_count() {
    let files = vec![
        ("a".to_string(), "the quick brown fox jumps over the lazy dog the end".repeat(30)),
        ("b".to_string(), "pack my box with five dozen liquor jugs the fox".repeat(30)),
    ];
    let comp = compress_corpus(&files, &TokenizerConfig::default());
    let batch: Vec<Task> = (0..16)
        .map(|i| [Task::WordCount, Task::Sort, Task::TermVector, Task::InvertedIndex][i % 4])
        .collect();
    let shard_totals = |threads: usize| {
        let engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
        let serve = engine.serve().unwrap();
        let queries: Vec<Query> =
            batch.iter().map(|&t| Query::new(TenantId::default(), t)).collect();
        par::with_threads(threads, || serve.run_queries(&queries).unwrap());
        serve.sim_device().read_shard_stats()
    };
    let base = shard_totals(1);
    assert!(base.iter().map(|s| s.reads).sum::<u64>() > 0, "serve must use the sharded path");
    for threads in [4, 8] {
        assert_eq!(shard_totals(threads), base, "shard totals diverged at {threads} threads");
    }
}
