//! Cross-crate integration tests for the multi-tenant serve daemon:
//! cache correctness (byte-identical hits, zero device-line reads,
//! snapshot invalidation), admission control (typed rejections, quota
//! release), batching amortization (fewer total lines touched than
//! unbatched serving), and trace determinism across worker counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use ntadoc_pmem::par;
use ntadoc_repro::{
    compress_corpus, shard_reads_total, Compressed, DaemonConfig, Engine, EngineConfig, Query,
    QueryDaemon, ServeError, Task, TenantId, TokenizerConfig, TraceSpec,
};

// ---------------------------------------------------------------------------
// Per-thread allocation counting, so the cache-hit hot path can be held to a
// hard allocation budget. Thread-local (not a global AtomicU64) so the other
// tests in this binary, running concurrently, can't pollute the count.

std::thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the counter update cannot
// allocate (const-initialized thread-local holding a Cell<u64> with no Drop).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

fn corpus() -> Compressed {
    let files = vec![
        ("a".to_string(), "the quick brown fox jumps over the lazy dog the end".repeat(25)),
        ("b".to_string(), "pack my box with five dozen liquor jugs the fox".repeat(25)),
        ("c".to_string(), "sphinx of black quartz judge my vow the quick judge".repeat(25)),
    ];
    compress_corpus(&files, &TokenizerConfig::default())
}

fn daemon_over(comp: &Compressed, cfg: DaemonConfig) -> QueryDaemon {
    let engine = Engine::builder(comp.clone()).config(EngineConfig::ntadoc()).build().unwrap();
    QueryDaemon::new(engine.serve().unwrap(), cfg)
}

#[test]
fn cache_hit_is_byte_identical_and_touches_zero_lines() {
    let comp = corpus();
    let mut d = daemon_over(&comp, DaemonConfig::default());
    for task in [Task::WordCount, Task::Sort, Task::TermVector, Task::InvertedIndex] {
        let q = Query::new(TenantId(1), task).top_k(7);
        let cold = d.execute(q.clone()).unwrap();
        assert!(!cold.cache_hit, "{task}: first ask must miss");
        let before = d.serve_session().sim_device().stats();
        let warm = d.execute(q).unwrap();
        let delta = d.serve_session().sim_device().stats().checked_since(&before).unwrap();
        assert!(warm.cache_hit, "{task}: second ask must hit");
        assert_eq!(cold.output(), warm.output(), "{task}: hit must be byte-identical");
        assert_eq!(delta.reads, 0, "{task}: cache hit issued device reads");
        assert_eq!(delta.line_misses, 0, "{task}: cache hit fetched media lines");
    }
}

#[test]
fn cache_hits_stay_on_a_flat_allocation_budget() {
    // The daemon hot path — admit, probe the result cache, build the
    // response — must not heap-allocate per hit beyond a small constant:
    // `ResultCache::get` borrows the caller's key (the old flat-keyed map
    // forced a `QueryKey` clone per probe), and the output rides an `Arc`.
    // A filtered query makes the key heap-owning, so any reintroduced
    // per-probe clone shows up as allocation growth here.
    let comp = corpus();
    let mut d = daemon_over(&comp, DaemonConfig::default());
    let q = Query::new(TenantId(1), Task::TermVector).file_filter("a").top_k(5);
    assert!(!d.execute(q.clone()).unwrap().cache_hit, "first ask must miss");

    let batch = |d: &mut QueryDaemon| {
        let before = thread_allocs();
        for _ in 0..64 {
            assert!(d.execute(q.clone()).unwrap().cache_hit, "warm ask must hit");
        }
        thread_allocs() - before
    };
    // Warm every lazily-grown structure (queues, completion buffers).
    batch(&mut d);
    let first = batch(&mut d);
    let second = batch(&mut d);
    assert_eq!(second, first, "per-hit allocations must not grow between batches");
    let per_hit = first as f64 / 64.0;
    assert!(per_hit <= 16.0, "cache hits allocate too much: {per_hit:.1} allocations per hit");
}

#[test]
fn different_query_shapes_do_not_share_cache_entries() {
    let comp = corpus();
    let mut d = daemon_over(&comp, DaemonConfig::default());
    let base = Query::new(TenantId(0), Task::WordCount);
    d.execute(base.clone()).unwrap();
    // Same task, different shaping — must all miss (and differ).
    let top = d.execute(base.clone().top_k(2)).unwrap();
    assert!(!top.cache_hit);
    assert_eq!(top.output().as_word_counts().unwrap().len(), 2);
    // Tenant is NOT part of the cache key: another tenant's identical
    // query hits.
    let other = d.execute(Query::new(TenantId(9), Task::WordCount)).unwrap();
    assert!(other.cache_hit, "cache key must ignore the tenant");
    assert_eq!(other.tenant, TenantId(9), "response still carries the asking tenant");
}

#[test]
fn snapshot_install_invalidates_stale_results() {
    let comp = corpus();
    let mut d = daemon_over(&comp, DaemonConfig::default());
    let q = Query::new(TenantId(0), Task::WordCount);
    let old = d.execute(q.clone()).unwrap();
    assert!(d.execute(q.clone()).unwrap().cache_hit);

    let files = vec![("z".to_string(), "completely new words in a new corpus".repeat(10))];
    let comp2 = compress_corpus(&files, &TokenizerConfig::default());
    let engine2 = Engine::builder(comp2).config(EngineConfig::ntadoc()).build().unwrap();
    assert_ne!(engine2.snapshot_version(), old.snapshot.fingerprint(), "fingerprints must differ");
    d.install(engine2.serve().unwrap()).unwrap();

    let fresh = d.execute(q).unwrap();
    assert!(!fresh.cache_hit, "stale entry must not survive the snapshot swap");
    assert_eq!(fresh.snapshot.fingerprint(), d.snapshot_version());
    assert_ne!(old.output(), fresh.output());
}

#[test]
fn quota_and_queue_rejections_are_typed_not_dropped() {
    let comp = corpus();
    let cfg = DaemonConfig {
        tenant_quota: 1,
        queue_limit: 3,
        batch_window_ns: u64::MAX / 4,
        max_batch: 64,
        ..DaemonConfig::default()
    };
    let mut d = daemon_over(&comp, cfg);
    d.submit(0, Query::new(TenantId(7), Task::WordCount)).unwrap();
    let quota_err = d.submit(1, Query::new(TenantId(7), Task::Sort)).unwrap_err();
    assert!(matches!(
        quota_err,
        ServeError::QuotaExceeded { tenant: TenantId(7), in_flight: 1, quota: 1 }
    ));
    d.submit(2, Query::new(TenantId(8), Task::Sort)).unwrap();
    d.submit(3, Query::new(TenantId(9), Task::TermVector)).unwrap();
    let queue_err = d.submit(4, Query::new(TenantId(10), Task::InvertedIndex)).unwrap_err();
    assert!(matches!(queue_err, ServeError::QueueFull { depth: 3, limit: 3 }));
    // Errors render for operators.
    assert!(quota_err.to_string().contains("quota"));
    assert!(queue_err.to_string().contains("queue full"));
}

#[test]
fn trace_rejections_are_reported_and_counted() {
    let comp = corpus();
    let cfg = DaemonConfig {
        tenant_quota: 1,
        batch_window_ns: u64::MAX / 4, // only max_batch triggers dispatch
        max_batch: 1000,
        ..DaemonConfig::default()
    };
    let mut d = daemon_over(&comp, cfg);
    // One tenant, back-to-back arrivals: everything past the first gets
    // bounced while the first is still queued.
    let trace =
        TraceSpec { tenants: 1, queries: 8, mean_gap_ns: 10, hot_percent: 100, seed: 9 }.generate();
    let outcome = d.run_trace(&trace).unwrap();
    assert_eq!(
        outcome.completions.len() + outcome.rejections.len(),
        trace.len(),
        "every arrival must be accounted for"
    );
    assert!(!outcome.rejections.is_empty(), "quota 1 must reject a burst");
    for r in &outcome.rejections {
        assert!(matches!(r.error, ServeError::QuotaExceeded { .. }));
        assert_eq!(r.tenant, TenantId(0));
    }
    let report = d.report();
    assert_eq!(
        report.metric_u64(ntadoc_pmem::obs::METRIC_ADMISSION_REJECTED),
        Some(outcome.rejections.len() as u64),
        "rejections must surface in the metric snapshot"
    );
}

#[test]
fn batched_serving_touches_fewer_lines_than_unbatched() {
    let comp = corpus();
    let trace =
        TraceSpec { tenants: 4, queries: 48, mean_gap_ns: 100_000, hot_percent: 80, seed: 0xbeef }
            .generate();
    let lift = |cfg: DaemonConfig| DaemonConfig {
        tenant_quota: trace.len(),
        queue_limit: 4 * trace.len(),
        ..cfg
    };
    let mut batched = daemon_over(&comp, lift(DaemonConfig::default()));
    let mut unbatched = daemon_over(&comp, lift(DaemonConfig::unbatched()));
    let ob = batched.run_trace(&trace).unwrap();
    let ou = unbatched.run_trace(&trace).unwrap();
    assert_eq!(ob.completions.len(), trace.len(), "batched must admit everything");
    assert_eq!(ou.completions.len(), trace.len(), "unbatched must admit everything");
    let lines_batched = shard_reads_total(&batched.report());
    let lines_unbatched = shard_reads_total(&unbatched.report());
    assert!(
        lines_batched < lines_unbatched,
        "batching + caching must amortize traversals: {lines_batched} vs {lines_unbatched}"
    );
    assert!(batched.cache_hit_rate() > 0.0, "hot trace must produce cache hits");
    assert!(
        batched.batches_dispatched() < unbatched.batches_dispatched(),
        "batch formation must coalesce arrivals"
    );
}

#[test]
fn trace_replay_is_bit_identical_across_worker_counts() {
    let comp = corpus();
    let trace = TraceSpec { queries: 48, ..TraceSpec::default() }.generate();
    let replay = |threads: usize| {
        let mut d = daemon_over(&comp, DaemonConfig::default());
        let outcome = par::with_threads(threads, || d.run_trace(&trace).unwrap());
        (outcome, d.report())
    };
    let (base, base_report) = replay(1);
    for threads in [2, 8] {
        let (outcome, report) = replay(threads);
        assert_eq!(outcome.completions.len(), base.completions.len());
        for (a, b) in outcome.completions.iter().zip(&base.completions) {
            assert_eq!(a.query, b.query, "query order diverged at {threads} threads");
            assert_eq!(a.start_ns, b.start_ns, "start diverged at {threads} threads");
            assert_eq!(a.done_ns, b.done_ns, "completion diverged at {threads} threads");
            assert_eq!(a.response, b.response, "response diverged at {threads} threads");
        }
        assert_eq!(
            report.to_json().pretty(),
            base_report.to_json().pretty(),
            "serialized report diverged at {threads} threads"
        );
    }
}

fn fresh_corpus() -> Compressed {
    let files = vec![("z".to_string(), "completely new words in a new corpus".repeat(10))];
    compress_corpus(&files, &TokenizerConfig::default())
}

#[test]
fn drained_batches_read_the_old_pool_and_stay_byte_identical() {
    let comp = corpus();
    // What the old snapshot answers, measured on an untouched daemon.
    let expect = {
        let mut r = daemon_over(&comp, DaemonConfig::default());
        (
            r.execute(Query::new(TenantId(0), Task::WordCount)).unwrap().output.clone(),
            r.execute(Query::new(TenantId(1), Task::Sort)).unwrap().output.clone(),
        )
    };

    let cfg = DaemonConfig {
        batch_window_ns: u64::MAX / 4, // nothing dispatches until flush
        max_batch: 1,                  // the two old queries dispatch as two batches
        ..DaemonConfig::default()
    };
    let mut d = daemon_over(&comp, cfg);
    let old_fp = d.snapshot_version();
    d.submit(10, Query::new(TenantId(0), Task::WordCount)).unwrap();
    d.submit(20, Query::new(TenantId(1), Task::Sort)).unwrap();

    let engine2 = Engine::builder(fresh_corpus()).config(EngineConfig::ntadoc()).build().unwrap();
    let flushed = d.install(engine2.serve().unwrap()).unwrap();
    assert!(flushed.is_empty(), "in-window work must keep draining, not flush on install");
    assert_eq!(d.draining_depth(), 2);

    // Keep handles on both lanes' devices so the deltas survive lane
    // retirement.
    let old_dev = d.draining_session().unwrap().sim_device().clone();
    let new_dev = d.serve_session().sim_device().clone();
    let old_before = old_dev.stats();
    let new_before = new_dev.stats();

    // A new admission lands under the new snapshot while the old drains.
    d.submit(30, Query::new(TenantId(2), Task::WordCount)).unwrap();
    let mut done = Vec::new();
    d.flush(&mut done).unwrap();
    assert_eq!(done.len(), 3);

    // The two drained completions are pinned to the old snapshot and are
    // byte-identical to what the old snapshot always answered.
    assert_eq!(done[0].response.snapshot.fingerprint(), old_fp);
    assert_eq!(done[1].response.snapshot.fingerprint(), old_fp);
    assert_eq!(done[0].response.output, expect.0);
    assert_eq!(done[1].response.output, expect.1);
    assert_eq!(done[2].response.snapshot.fingerprint(), d.snapshot_version());

    // And they were served from the old pool: the old device did the
    // drain-lane reads, the new device only the new-snapshot batch.
    let old_delta = old_dev.stats().checked_since(&old_before).unwrap();
    let new_delta = new_dev.stats().checked_since(&new_before).unwrap();
    assert!(old_delta.reads > 0, "drained batches must read the old pool");
    assert!(new_delta.reads > 0, "the new admission must read the new pool");
    assert!(d.draining_session().is_none(), "drain lane retires once empty");
}

#[test]
fn mid_trace_install_replays_bit_identically_across_worker_counts() {
    let comp = corpus();
    let comp2 = fresh_corpus();
    let trace = TraceSpec { queries: 32, ..TraceSpec::default() }.generate();
    let (head, tail) = trace.split_at(trace.len() / 2);
    let replay = |threads: usize| {
        par::with_threads(threads, || {
            let mut d = daemon_over(&comp, DaemonConfig::default());
            let mut outcome = d.feed(head).unwrap();
            let engine2 =
                Engine::builder(comp2.clone()).config(EngineConfig::ntadoc()).build().unwrap();
            outcome.completions.extend(d.install(engine2.serve().unwrap()).unwrap());
            let rest = d.feed(tail).unwrap();
            outcome.completions.extend(rest.completions);
            outcome.rejections.extend(rest.rejections);
            d.flush(&mut outcome.completions).unwrap();
            outcome
        })
    };
    let base = replay(1);
    assert!(!base.completions.is_empty());
    for threads in [4, 8] {
        let outcome = replay(threads);
        assert_eq!(outcome.completions.len(), base.completions.len());
        assert_eq!(outcome.rejections.len(), base.rejections.len());
        for (a, b) in outcome.completions.iter().zip(&base.completions) {
            assert_eq!(a.query, b.query, "query order diverged at {threads} threads");
            assert_eq!(a.start_ns, b.start_ns, "start diverged at {threads} threads");
            assert_eq!(a.done_ns, b.done_ns, "completion diverged at {threads} threads");
            assert_eq!(a.response, b.response, "response diverged at {threads} threads");
        }
    }
}
